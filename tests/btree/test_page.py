"""Unit and property tests for the slotted page buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.page import (
    DIRTY_GRAIN,
    PAGE_HEADER_SIZE,
    PAGE_TRAILER_SIZE,
    Page,
    PageType,
)
from repro.errors import ChecksumError, PageFormatError


def test_fresh_page_header():
    page = Page(8192, page_id=7, page_type=PageType.LEAF)
    assert page.page_id == 7
    assert page.page_type == PageType.LEAF
    assert page.level == 0
    assert page.nslots == 0
    assert page.lsn == 0


def test_fresh_page_free_space():
    page = Page(8192)
    assert page.free_space == 8192 - PAGE_HEADER_SIZE - PAGE_TRAILER_SIZE


def test_unsupported_page_size_rejected():
    with pytest.raises(PageFormatError):
        Page(100)
    with pytest.raises(PageFormatError):
        Page(8192 + 1)


def test_internal_page_level():
    page = Page(4096, page_type=PageType.INTERNAL, level=2)
    assert page.level == 2
    assert page.page_type == PageType.INTERNAL


def test_lsn_roundtrip():
    page = Page(4096)
    page.lsn = 123456789
    assert page.lsn == 123456789


def test_slot_insert_and_lookup():
    page = Page(4096)
    page.insert_slot(0, 1000)
    page.insert_slot(1, 2000)
    page.insert_slot(1, 1500)  # shifts the old slot 1 to slot 2
    assert [page.slot_offset(i) for i in range(3)] == [1000, 1500, 2000]
    assert page.nslots == 3


def test_slot_remove_shifts_left():
    page = Page(4096)
    for i, offset in enumerate([100, 200, 300]):
        page.insert_slot(i, offset)
    page.remove_slot(1)
    assert [page.slot_offset(i) for i in range(2)] == [100, 300]


def test_slot_bounds_checked():
    page = Page(4096)
    with pytest.raises(PageFormatError):
        page.slot_offset(0)
    with pytest.raises(PageFormatError):
        page.insert_slot(1, 0)
    with pytest.raises(PageFormatError):
        page.remove_slot(0)


def test_allocate_cell_moves_cell_start_down():
    page = Page(4096)
    before = page.cell_start
    offset = page.allocate_cell(100)
    assert offset == before - 100
    assert page.cell_start == offset


def test_allocate_cell_overflow_rejected():
    page = Page(4096)
    with pytest.raises(PageFormatError):
        page.allocate_cell(page.free_space + 1)


def test_write_cell_roundtrip():
    page = Page(4096)
    offset = page.allocate_cell(5)
    page.write_cell(offset, b"hello")
    assert bytes(page.buf[offset : offset + 5]) == b"hello"


def test_dead_bytes_accounting():
    page = Page(4096)
    page.add_dead_bytes(64)
    page.add_dead_bytes(16)
    assert page.dead_bytes == 80
    assert page.reclaimable_space == page.free_space + 80


def test_finalize_then_checksum_ok():
    page = Page(4096, page_id=3)
    page.finalize(lsn=42)
    assert page.lsn == 42
    assert page.checksum_ok()


def test_corruption_detected():
    page = Page(4096)
    page.finalize(lsn=1)
    page.buf[2048] ^= 0xFF
    assert not page.checksum_ok()
    with pytest.raises(ChecksumError):
        page.verify_checksum()


def test_torn_write_detected_via_trailer():
    """Simulate the first 4KB of an 8KB page persisting without the second."""
    page = Page(8192, page_id=1)
    page.finalize(lsn=9)
    old = Page(8192, page_id=1)
    old.finalize(lsn=3)
    torn = page.image()[:4096] + old.image()[4096:]
    assert not Page.from_bytes(torn, verify=False).checksum_ok()


def test_from_bytes_roundtrip():
    page = Page(4096, page_id=11, page_type=PageType.INTERNAL, level=1)
    page.finalize(lsn=5)
    loaded = Page.from_bytes(page.image())
    assert loaded.page_id == 11
    assert loaded.page_type == PageType.INTERNAL
    assert loaded.lsn == 5


def test_from_bytes_rejects_bad_magic():
    with pytest.raises(PageFormatError):
        Page.from_bytes(b"\x00" * 4096)


def test_from_bytes_rejects_corrupt_checksum():
    page = Page(4096)
    page.finalize(lsn=1)
    image = bytearray(page.image())
    image[1000] ^= 1
    with pytest.raises(ChecksumError):
        Page.from_bytes(bytes(image))


def test_fresh_page_fully_dirty():
    page = Page(4096)
    assert page.dirty_segments(256) == list(range(4096 // 256))


def test_dirty_tracking_localized():
    page = Page(4096)
    page.clear_dirty()
    page.write_cell(2048, b"x" * 10)
    segments = page.dirty_segments(256)
    assert segments == [2048 // 256]


def test_dirty_range_spanning_segments():
    page = Page(4096)
    page.clear_dirty()
    page.mark_dirty(250, 270)
    assert page.dirty_segments(256) == [0, 1]


def test_dirty_segment_size_validation():
    page = Page(4096)
    with pytest.raises(ValueError):
        page.dirty_segments(100)  # not a multiple of the grain
    with pytest.raises(ValueError):
        page.dirty_segments(0)


def test_finalize_dirties_header_and_trailer():
    page = Page(4096)
    page.clear_dirty()
    page.finalize(lsn=2)
    segments = page.dirty_segments(128)
    assert 0 in segments  # header segment
    assert (4096 // 128) - 1 in segments  # trailer segment


def test_mark_all_dirty():
    page = Page(4096)
    page.clear_dirty()
    page.mark_all_dirty()
    assert len(page.dirty_segments(DIRTY_GRAIN)) == 4096 // DIRTY_GRAIN


@settings(max_examples=50, deadline=None)
@given(
    start=st.integers(0, 4095),
    length=st.integers(1, 512),
)
def test_property_dirty_tracking_is_conservative(start, length):
    """Every modified byte must fall inside a dirty segment."""
    page = Page(4096)
    page.clear_dirty()
    end = min(start + length, 4096)
    page.mark_dirty(start, end)
    covered = set()
    for seg in page.dirty_segments(128):
        covered.update(range(seg * 128, (seg + 1) * 128))
    assert set(range(start, end)) <= covered


@settings(max_examples=30, deadline=None)
@given(lsn=st.integers(0, 2**64 - 1))
def test_property_finalize_checksum_roundtrip(lsn):
    page = Page(4096, page_id=1)
    page.finalize(lsn=lsn)
    assert Page.from_bytes(page.image()).lsn == lsn
