"""Unit tests for the three page-atomicity strategies."""

import pytest

from repro.btree.page import Page
from repro.btree.pager import (
    DeterministicShadowPager,
    JournalPager,
    ShadowTablePager,
    make_pager,
)
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.errors import ConfigError, RecoveryError

PAGE_SIZE = 8192
MAX_PAGES = 32


@pytest.fixture(params=["journal", "shadow-table", "det-shadow"])
def pager(request):
    device = CompressedBlockDevice(num_blocks=4096)
    return make_pager(request.param, device, PAGE_SIZE, MAX_PAGES, region_start=1)


def make_page(pager, fill=b"payload"):
    page = Page(PAGE_SIZE, pager.allocate_page_id())
    offset = page.allocate_cell(len(fill))
    page.write_cell(offset, fill)
    page.insert_slot(0, offset)
    return page


# ------------------------------------------------------------------ generic


def test_unknown_strategy_rejected():
    device = CompressedBlockDevice(num_blocks=4096)
    with pytest.raises(ConfigError):
        make_pager("nope", device, PAGE_SIZE, MAX_PAGES, 1)


def test_misaligned_page_size_rejected():
    device = CompressedBlockDevice(num_blocks=4096)
    with pytest.raises(ConfigError):
        JournalPager(device, 5000, MAX_PAGES, 1)


def test_device_too_small_rejected():
    device = CompressedBlockDevice(num_blocks=8)
    with pytest.raises(ConfigError):
        DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)


def test_allocate_ids_monotone_then_reused(pager):
    a = pager.allocate_page_id()
    b = pager.allocate_page_id()
    assert b == a + 1
    # Frees are deferred: the id becomes reusable only once the engine
    # applies them at a checkpoint (after the unlinking parents are durable).
    pager.free_page(a)
    pager.apply_deferred_frees()
    assert pager.allocate_page_id() == a


def test_page_budget_enforced(pager):
    for _ in range(MAX_PAGES):
        pager.allocate_page_id()
    with pytest.raises(ConfigError):
        pager.allocate_page_id()


def test_flush_then_load_roundtrip(pager):
    page = make_page(pager)
    pager.flush(page)
    loaded = pager.load(page.page_id)
    assert loaded.image() == page.image()


def test_flush_clears_dirty_and_never_flushed(pager):
    page = make_page(pager)
    assert page.page_id in pager.never_flushed
    pager.flush(page)
    assert not page.dirty_grains
    assert page.page_id not in pager.never_flushed


def test_repeated_flushes_latest_wins(pager):
    page = make_page(pager)
    for lsn in range(1, 6):
        page.lsn = lsn
        pager.flush(page)
    assert pager.load(page.page_id).lsn == 5


def test_allocator_state_roundtrip(pager):
    a = pager.allocate_page_id()
    pager.allocate_page_id()
    pager.free_page(a)
    pager.apply_deferred_frees()
    next_id, free = pager.allocator_state()
    fresh_device = CompressedBlockDevice(num_blocks=4096)
    fresh = make_pager(type(pager).__name__ and
                       {"JournalPager": "journal",
                        "ShadowTablePager": "shadow-table",
                        "DeterministicShadowPager": "det-shadow"}[type(pager).__name__],
                       fresh_device, PAGE_SIZE, MAX_PAGES, 1)
    fresh.restore_allocator_state(next_id, free)
    assert fresh.allocate_page_id() == a


def test_page_write_accounting(pager):
    page = make_page(pager)
    pager.flush(page)
    assert pager.stats.page_flushes == 1
    assert pager.stats.page_logical_bytes == PAGE_SIZE
    assert 0 < pager.stats.page_physical_bytes < PAGE_SIZE


# ------------------------------------------------------ extra-write accounting


def test_journal_doubles_write_volume():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = JournalPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    pager.flush(page)
    assert pager.stats.extra_logical_bytes == PAGE_SIZE  # the journal copy


def test_shadow_table_pays_one_table_block_per_flush():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = ShadowTablePager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    pager.flush(page)
    pager.flush(page)
    assert pager.stats.extra_logical_bytes == 2 * BLOCK_SIZE


def test_det_shadow_has_zero_extra_writes():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    for _ in range(5):
        pager.flush(page)
    assert pager.stats.extra_logical_bytes == 0
    assert pager.stats.extra_physical_bytes == 0


def test_det_shadow_trims_stale_slot():
    """Only one slot's worth of physical space is ever live per page."""
    device = CompressedBlockDevice(num_blocks=4096)
    pager = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager, fill=b"z" * 2000)
    pager.flush(page)
    used_once = device.physical_bytes_used
    for _ in range(6):
        pager.flush(page)
    assert device.physical_bytes_used == pytest.approx(used_once, rel=0.05)


def test_det_shadow_alternates_slots():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    pager.flush(page)
    first = pager._valid_slot[page.page_id]
    pager.flush(page)
    assert pager._valid_slot[page.page_id] == 1 - first


# ----------------------------------------------------------- crash arbitration


def test_det_shadow_rebuilds_bitmap_after_restart():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    page.lsn = 10
    pager.flush(page)
    page.lsn = 20
    pager.flush(page)
    device.flush()
    restarted = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    loaded = restarted.load(page.page_id)
    assert loaded.lsn == 20


def test_det_shadow_survives_torn_second_flush():
    """Crash mid-way through writing the shadow slot: the old image wins."""
    device = CompressedBlockDevice(num_blocks=4096)
    pager = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    page.lsn = 10
    pager.flush(page)
    device.flush()
    target = 1 - pager._valid_slot[page.page_id]
    target_lba = pager._slot_lba(page.page_id, target)
    page.lsn = 20
    page.finalize()
    # Only the first 4KB of the 8KB shadow write lands before the crash.
    device.write_blocks(target_lba, page.image())
    device.simulate_crash(survives=lambda lba: lba == target_lba)
    restarted = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    loaded = restarted.load(page.page_id)
    assert loaded.lsn == 10  # torn lsn-20 image rejected by checksum


def test_det_shadow_both_slots_valid_higher_lsn_wins():
    """Crash after shadow write durable but before the TRIM: LSN arbitration."""
    device = CompressedBlockDevice(num_blocks=4096)
    pager = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    page.lsn = 10
    pager.flush(page)
    valid = pager._valid_slot[page.page_id]
    page.lsn = 20
    page.finalize()
    device.write_blocks(pager._slot_lba(page.page_id, 1 - valid), page.image())
    device.flush()  # both slots now hold valid images, no TRIM happened
    restarted = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    assert restarted.load(page.page_id).lsn == 20


def test_det_shadow_load_unwritten_page_fails():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = DeterministicShadowPager(device, PAGE_SIZE, MAX_PAGES, 1)
    pager.allocate_page_id()
    with pytest.raises(RecoveryError):
        pager.load(0)


def test_journal_repairs_torn_in_place_write():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = JournalPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    page.lsn = 5
    pager.flush(page)
    # Second flush: journal write + sync succeed, in-place write is torn.
    page.lsn = 6
    image = pager._finalize(page)
    device.write_blocks(pager._journal_lba(pager._journal_cursor), image)
    device.flush()
    lba = pager._page_lba(page.page_id)
    device.write_blocks(lba, image)
    device.simulate_crash(survives=lambda b: b == lba)  # half the page lands
    restarted = JournalPager(device, PAGE_SIZE, MAX_PAGES, 1)
    repaired = restarted.recover_torn_pages()
    assert page.page_id in repaired
    assert restarted.load(page.page_id).lsn == 6


def test_journal_recovery_keeps_newer_in_place_image():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = JournalPager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    page.lsn = 5
    pager.flush(page)
    page.lsn = 9
    pager.flush(page)
    device.flush()
    restarted = JournalPager(device, PAGE_SIZE, MAX_PAGES, 1)
    restarted.recover_torn_pages()
    assert restarted.load(page.page_id).lsn == 9


def test_shadow_table_rebuild_after_restart():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = ShadowTablePager(device, PAGE_SIZE, MAX_PAGES, 1)
    pages = [make_page(pager) for _ in range(3)]
    for i, page in enumerate(pages):
        page.lsn = i + 1
        pager.flush(page)
    device.flush()
    restarted = ShadowTablePager(device, PAGE_SIZE, MAX_PAGES, 1)
    restarted.rebuild_table()
    for i, page in enumerate(pages):
        assert restarted.load(page.page_id).lsn == i + 1


def test_shadow_table_crash_before_table_persist_keeps_old_image():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = ShadowTablePager(device, PAGE_SIZE, MAX_PAGES, 1)
    page = make_page(pager)
    page.lsn = 5
    pager.flush(page)
    device.flush()
    # New image written to a fresh slot, but table persist lost in the crash.
    new_slot = pager._free_slots[-1]
    page.lsn = 6
    device.write_blocks(pager._slot_lba(new_slot), pager._finalize(page))
    device.simulate_crash()
    restarted = ShadowTablePager(device, PAGE_SIZE, MAX_PAGES, 1)
    restarted.rebuild_table()
    assert restarted.load(page.page_id).lsn == 5


def test_shadow_table_load_unmapped_page_fails():
    device = CompressedBlockDevice(num_blocks=4096)
    pager = ShadowTablePager(device, PAGE_SIZE, MAX_PAGES, 1)
    with pytest.raises(RecoveryError):
        pager.load(0)


def test_free_page_releases_physical_space(pager):
    page = make_page(pager, fill=b"q" * 3000)
    pager.flush(page)
    pager.device.flush()
    before = pager.device.physical_bytes_used
    pager.free_page(page.page_id)
    # Deferred until checkpoint: no space reclaimed yet.
    assert pager.device.physical_bytes_used == before
    assert pager.apply_deferred_frees() == [page.page_id]
    assert pager.device.physical_bytes_used < before
