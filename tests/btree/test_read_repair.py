"""Targeted self-healing tests: read-repair, journal restore, WAL truncation.

The ``repro faultcheck`` campaign exercises these paths end to end; here each
healing mechanism is pinned down in isolation with hand-placed corruption.
"""

import random


from repro.btree.engine import BTreeConfig, BTreeEngine
from repro.btree.page import Page
from repro.btree.pager import DeterministicShadowPager, JournalPager
from repro.btree.wal import LogOp, LogPosition, LogRecord, RedoLog
from repro.core.delta import DeltaShadowPager
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.csd.faults import FaultInjectingDevice, FaultPlan, ScriptedFault

PAGE_SIZE = 8192


def faulty_device(plan=None, num_blocks=1024):
    return FaultInjectingDevice(CompressedBlockDevice(num_blocks), plan)


def seeded_page(pager, payload: bytes) -> Page:
    page = Page(PAGE_SIZE, pager.allocate_page_id())
    offset = page.allocate_cell(len(payload))
    page.write_cell(offset, payload)
    page.insert_slot(0, offset)
    return page


def mutate(page: Page, rng: random.Random) -> None:
    start = rng.randrange(64, PAGE_SIZE - 300)
    length = rng.randrange(32, 200)
    page.buf[start : start + length] = bytes(
        rng.getrandbits(8) for _ in range(length))
    page.mark_dirty(start, start + length)


# ----------------------------------------------------- shadow-slot healing


def test_shadow_read_repair_serves_sibling_and_heals_media():
    """Corrupting the valid slot: arbitration serves the stale sibling and
    rewrites the rotten slot in place (read-repair)."""
    rng = random.Random(1)
    device = faulty_device(FaultPlan(dropped_trim_rate=1.0))
    pager = DeterministicShadowPager(device, PAGE_SIZE, 16, 1)
    page = seeded_page(pager, b"payload" * 20)
    page.lsn = 1
    pager.flush(page)
    older = page.image()
    mutate(page, rng)
    page.lsn = 2
    pager.flush(page)  # sibling TRIM dropped: the lsn-1 image survives
    valid = pager._valid_slot[page.page_id]
    device.corrupt_stable(pager._slot_lba(page.page_id, valid),
                          pager.page_blocks)

    fresh = DeterministicShadowPager(device, PAGE_SIZE, 16, 1)
    recovered = fresh.load(page.page_id)
    assert recovered.image() == older  # the surviving (older) sibling
    assert recovered.lsn == 1
    assert fresh.fault_stats.read_repairs == 1
    assert fresh.fault_stats.checksum_failures >= 1
    assert device.corrupted_lbas == []  # the repair rewrite healed the rot


def test_shadow_known_slot_reread_heals_transient_corruption():
    """A known-slot load that reads garbage once re-reads before falling
    back to arbitration — transient bus corruption costs one extra read."""
    inner = CompressedBlockDevice(num_blocks=1024)
    pager = DeterministicShadowPager(inner, PAGE_SIZE, 16, 1)
    page = seeded_page(pager, b"x" * 100)
    page.lsn = 1
    pager.flush(page)

    device = FaultInjectingDevice(
        inner, FaultPlan(scripted=(ScriptedFault(0, "read-corruption"),)))
    fresh = DeterministicShadowPager(device, PAGE_SIZE, 16, 1)
    fresh._valid_slot[page.page_id] = pager._valid_slot[page.page_id]
    recovered = fresh.load(page.page_id)
    assert recovered.image() == page.image()
    assert fresh.fault_stats.checksum_failures == 1
    assert fresh.fault_stats.reread_heals == 1
    assert fresh.fault_stats.read_repairs == 0  # media was never bad


def test_shadow_known_slot_latent_rot_falls_back_to_arbitration():
    device = faulty_device(FaultPlan(dropped_trim_rate=1.0))
    pager = DeterministicShadowPager(device, PAGE_SIZE, 16, 1)
    page = seeded_page(pager, b"y" * 80)
    page.lsn = 1
    pager.flush(page)
    older = page.image()
    mutate(page, random.Random(2))
    page.lsn = 2
    pager.flush(page)
    valid = pager._valid_slot[page.page_id]
    device.corrupt_stable(pager._slot_lba(page.page_id, valid),
                          pager.page_blocks)
    # Same pager instance: the valid slot is *known*, so the load walks the
    # full ladder — checksum failure, clean re-read (still rotten),
    # arbitration fallback, sibling served, slot repaired.
    recovered = pager.load(page.page_id)
    assert recovered.image() == older
    assert pager.fault_stats.arbitration_fallbacks == 1
    assert pager.fault_stats.read_repairs == 1
    assert device.corrupted_lbas == []


# -------------------------------------------------------- journal healing


def test_journal_pager_restores_home_location_from_ring():
    device = faulty_device()
    pager = JournalPager(device, PAGE_SIZE, 16, 1)
    page = seeded_page(pager, b"ring" * 30)
    page.lsn = 1
    pager.flush(page)
    device.corrupt_stable(pager._page_lba(page.page_id), pager.page_blocks)

    fresh = JournalPager(device, PAGE_SIZE, 16, 1)
    recovered = fresh.load(page.page_id)
    assert recovered.image() == page.image()
    assert fresh.fault_stats.journal_repairs == 1
    assert device.corrupted_lbas == []  # restore rewrote the home blocks


# ---------------------------------------------------------- delta healing


def test_corrupt_delta_block_falls_back_to_full_image():
    device = faulty_device()
    pager = DeltaShadowPager(device, PAGE_SIZE, 16, 1,
                             threshold=2048, segment_size=128)
    page = seeded_page(pager, b"base" * 40)
    page.lsn = 1
    pager.flush(page)
    base = page.image()
    # A small mutation stays under T: the next flush writes only the delta.
    page.buf[500:520] = b"Z" * 20
    page.mark_dirty(500, 520)
    page.lsn = 2
    pager.flush(page)
    device.corrupt_stable(pager._delta_lba(page.page_id))

    fresh = DeltaShadowPager(device, PAGE_SIZE, 16, 1,
                             threshold=2048, segment_size=128)
    recovered = fresh.load(page.page_id)
    # The delta is unusable; the load must degrade to the last full image
    # (the redo log re-applies the lost tail at engine level) and scrub the
    # rotten delta block so it reads as clean zeros from now on.
    assert recovered.image() == base
    assert fresh.fault_stats.delta_fallbacks == 1
    assert fresh.fault_stats.delta_scrubs == 1
    assert device.corrupted_lbas == []


# ------------------------------------------------------- WAL tail healing


def record(lsn: int) -> LogRecord:
    return LogRecord(lsn, 0, LogOp.PUT, b"k%d" % lsn, b"v" * (lsn % 40))


def test_wal_corrupt_ring_block_truncates_scan():
    device = CompressedBlockDevice(num_blocks=256)
    log = RedoLog(device, 0, 64, sparse=True)
    for lsn in range(1, 21):
        log.append(record(lsn))
        log.flush()  # sparse mode seals one ring block per flush
    device.simulate_crash(survives=lambda lba: True)
    corrupt_index = 10
    device.write_block(corrupt_index, b"\xa5" * BLOCK_SIZE)
    device.flush()

    reader = RedoLog(device, 0, 64, sparse=True)
    records, end = reader.scan(LogPosition(0, 1))
    lsns = [r.lsn for r in records]
    assert lsns == list(range(1, corrupt_index + 1))  # clean prefix only
    assert reader.fault_stats.wal_truncations == 1
    # The truncated end points at the corrupt block with a sequence past
    # every surviving header, so a resumed writer overwrites (heals) it.
    assert end.block_index == corrupt_index
    assert end.sequence > max(lsns)


def test_wal_replay_truncates_instead_of_raising():
    device = CompressedBlockDevice(num_blocks=256)
    log = RedoLog(device, 0, 64, sparse=True)
    for lsn in range(1, 13):
        log.append(record(lsn))
        log.flush()
    device.write_block(5, b"\x17" * BLOCK_SIZE)
    device.flush()
    reader = RedoLog(device, 0, 64, sparse=True)
    lsns = [r.lsn for r in reader.replay(LogPosition(0, 1))]
    assert lsns == [1, 2, 3, 4, 5]
    assert reader.fault_stats.wal_truncations == 1


# ----------------------------------------------- engine-level integration


def engine_config() -> BTreeConfig:
    return BTreeConfig(
        page_size=BLOCK_SIZE,
        cache_bytes=4 * BLOCK_SIZE,
        atomicity="det-shadow",
        wal_mode="packed",
        log_flush_policy="commit",
        checkpoint_interval=1e18,
        max_pages=512,
        log_blocks=1024,
    )


def run_workload(engine, seed: int, ops: int) -> dict:
    rng = random.Random(seed)
    model: dict[bytes, bytes] = {}
    for _ in range(ops):
        key = b"k%05d" % rng.randrange(1200)
        if model and rng.random() < 0.1:
            victim = sorted(model)[rng.randrange(len(model))]
            engine.delete(victim)
            del model[victim]
        else:
            value = bytes(rng.getrandbits(8) for _ in range(rng.randrange(100, 250)))
            engine.put(key, value)
            model[key] = value
        engine.commit()
        # Point reads keep the load path (and its retries) exercised too.
        probe = b"k%05d" % rng.randrange(1200)
        assert engine.get(probe) == model.get(probe)
    return model


def test_engine_absorbs_probabilistic_faults_invisibly():
    device = faulty_device(
        FaultPlan(seed=3, transient_read_rate=0.05, transient_write_rate=0.05,
                  torn_write_rate=0.05, dropped_trim_rate=0.3),
        num_blocks=4096,
    )
    engine = BTreeEngine(device, engine_config())
    model = run_workload(engine, seed=11, ops=250)
    assert dict(engine.items()) == model
    assert device.injected.total > 0  # faults really fired...
    assert engine.fault_stats.total_retries > 0  # ...and were retried away


def test_fault_free_wrapped_engine_is_bit_identical():
    """Acceptance: the hardening must not perturb a healthy run at all."""
    def run(device):
        engine = BTreeEngine(device, engine_config())
        model = run_workload(engine, seed=7, ops=120)
        engine.close()
        return model, device.stats.logical_bytes_written, \
            device.stats.physical_bytes_written, device.physical_bytes_used

    bare = CompressedBlockDevice(num_blocks=4096)
    wrapped = faulty_device(FaultPlan(), num_blocks=4096)
    bare_out = run(bare)
    wrapped_out = run(wrapped)
    assert bare_out == wrapped_out
    assert wrapped.injected.total == 0

    reopened = BTreeEngine.open(wrapped, engine_config())
    assert all(v == 0 for v in reopened.fault_stats.as_dict().values())
