"""Recovery-scrub tests: crafted crash states around structure changes.

These tests manufacture the exact on-storage states a crash can leave behind
between the ordered flushes of a split — stale routing, stale leaf tails,
orphaned siblings — and verify that recovery walks, scrubs, and continues
correctly.
"""

import random


from repro.btree.engine import BTreeConfig, BTreeEngine
from repro.btree.node import LeafNode
from repro.btree.page import PageType
from repro.csd.device import CompressedBlockDevice


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


def make_engine(device=None, cache_bytes=1 << 20):
    device = device or CompressedBlockDevice(num_blocks=200_000)
    config = BTreeConfig(
        page_size=8192, cache_bytes=cache_bytes, max_pages=1024,
        log_blocks=512, atomicity="det-shadow", wal_mode="packed",
        log_flush_policy="commit",
    )
    return BTreeEngine(device, config), device, config


def fill_until_split(engine, value=b"v" * 120):
    """Insert keys until the root splits at least once; returns the key set."""
    inserted = {}
    i = 0
    while engine.tree.depth() < 2:
        engine.put(key(i), value)
        inserted[key(i)] = value
        engine.commit()
        i += 1
    return inserted


def test_flush_order_left_forces_parent_and_sibling():
    """Evicting the shrunken left page first must drag parent + sibling out."""
    engine, device, config = make_engine()
    expected = fill_until_split(engine)
    # Find a leaf with a registered flush-order dependency.
    deps = dict(engine.pager.flush_after)
    if deps:
        target = next(iter(deps))
        if target in engine.pool:
            engine.pool.flush_page(target)
            # Its parent dependency must be satisfied (popped) afterwards.
            assert target not in engine.pager.flush_after
    # Regardless of flush order games, a crash now must preserve everything.
    device.simulate_crash(survives=lambda lba: random.Random(1).random() < 0.5)
    recovered = BTreeEngine.open(device, config)
    assert dict(recovered.items()) == expected


def test_stale_leaf_tail_scrubbed_on_recovery():
    """Craft the 'parent + sibling flushed, left page stale' crash state."""
    engine, device, config = make_engine()
    expected = fill_until_split(engine)
    engine.checkpoint()
    device.flush()
    # Locate a leaf and its parent through the root.
    root = engine.pool.get(engine.tree.root_id)
    assert root.page_type == PageType.INTERNAL
    # Rewrite history: reload the *pre-split* image of the left-most leaf by
    # splitting it again now and flushing everything EXCEPT the left page.
    from repro.btree.node import InternalNode

    left_id = InternalNode(root).child_at(0)
    # Insert into the leftmost region until that leaf splits again.
    leaf = LeafNode(engine.pool.get(left_id))
    first_keys = leaf.keys()
    hi = int.from_bytes(first_keys[-1], "big")
    extra = {}
    n = leaf.nslots
    j = 0
    while LeafNode(engine.pool.get(left_id)).nslots >= n:
        # Fill with keys inside the leaf's range to force ITS split.
        k = key(hi * 1000 + j)
        if k >= first_keys[-1]:
            break
        engine.put(k, b"x" * 120)
        extra[k] = b"x" * 120
        engine.commit()
        j += 1
    # Whatever structural state resulted, a crash must recover exactly the
    # committed records, and invariants must hold post-scrub.
    device.simulate_crash(survives=lambda lba: random.Random(7).random() < 0.6)
    recovered = BTreeEngine.open(device, config)
    expected.update(extra)
    assert dict(recovered.items()) == expected
    recovered.tree.check_invariants()


def test_recovery_reallocates_only_unreachable_ids():
    engine, device, config = make_engine()
    expected = fill_until_split(engine)
    device.simulate_crash()
    recovered = BTreeEngine.open(device, config)
    next_id_after, free_ids = recovered.pager.allocator_state()
    # Every reachable page id stays out of the free list.
    reachable = set()
    queue = [recovered.tree.root_id]
    from repro.btree.node import InternalNode as IN

    while queue:
        pid = queue.pop()
        reachable.add(pid)
        page = recovered.pool.get(pid)
        if page.page_type == PageType.INTERNAL:
            queue.extend(IN(page).children())
    assert reachable.isdisjoint(free_ids)
    assert next_id_after >= max(reachable) + 1
    assert dict(recovered.items()) == expected


def test_scan_never_returns_out_of_bounds_duplicates():
    """Bounded scans hide stale split residue even before any scrub runs."""
    engine, device, config = make_engine(cache_bytes=1 << 16)
    rng = random.Random(3)
    expected = {}
    for i in range(3000):
        k = key(rng.randrange(900))
        v = rng.randbytes(100)
        engine.put(k, v)
        expected[k] = v
        engine.commit()
    device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
    recovered = BTreeEngine.open(device, config)
    # items() must contain no duplicate keys (stale copies hidden/scrubbed).
    seen = [k for k, _ in recovered.items()]
    assert len(seen) == len(set(seen))
    assert dict(recovered.items()) == expected


def test_recovery_scrub_restores_invariants_after_many_split_crashes():
    device = CompressedBlockDevice(num_blocks=200_000)
    config = BTreeConfig(
        page_size=8192, cache_bytes=1 << 16, max_pages=1024, log_blocks=512,
        atomicity="det-shadow", wal_mode="packed", log_flush_policy="commit",
    )
    engine = BTreeEngine(device, config)
    rng = random.Random(11)
    expected = {}
    for round_no in range(5):
        # Bursts of fresh inserts maximise split activity between crashes.
        base = round_no * 10_000
        for i in range(600):
            k = key(base + i)
            v = rng.randbytes(110)
            engine.put(k, v)
            expected[k] = v
            engine.commit()
        device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
        engine = BTreeEngine.open(device, config)
        engine.tree.check_invariants()
        assert dict(engine.items()) == expected, f"round {round_no}"
