"""Unit and property tests for the B+-tree over a real pager + buffer pool."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.buffer_pool import BufferPool
from repro.btree.pager import make_pager
from repro.btree.tree import BTree
from repro.csd.device import CompressedBlockDevice
from repro.errors import KeyNotFoundError, TreeError


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


class TreeRig:
    """A tree with its supporting cast, on a fresh compressing device."""

    def __init__(self, strategy="det-shadow", page_size=4096, cache_pages=64,
                 max_pages=512):
        self.device = CompressedBlockDevice(num_blocks=max_pages * 8 + 64)
        self.pager = make_pager(strategy, self.device, page_size, max_pages, 1)
        self.pool = BufferPool(cache_pages * page_size, page_size,
                               self.pager.load, self.pager.flush)
        self._lsn = 0
        self.tree = BTree(self.pool, self.pager, page_size, self._next_lsn)

    def _next_lsn(self) -> int:
        self._lsn += 1
        return self._lsn


@pytest.fixture
def rig():
    return TreeRig()


def test_empty_tree(rig):
    assert rig.tree.get(key(1)) is None
    assert rig.tree.scan(b"", 10) == []
    assert rig.tree.depth() == 1
    rig.tree.check_invariants()


def test_put_get_single(rig):
    rig.tree.put(key(1), b"one")
    assert rig.tree.get(key(1)) == b"one"


def test_put_returns_insert_vs_update(rig):
    assert rig.tree.put(key(1), b"a") is True
    assert rig.tree.put(key(1), b"b") is False
    assert rig.tree.get(key(1)) == b"b"


def test_empty_key_rejected(rig):
    with pytest.raises(TreeError):
        rig.tree.put(b"", b"v")


def test_oversized_record_rejected(rig):
    with pytest.raises(TreeError):
        rig.tree.put(key(1), b"x" * 4096)


def test_delete_missing_raises(rig):
    with pytest.raises(KeyNotFoundError):
        rig.tree.delete(key(404))


def test_splits_grow_depth(rig):
    for i in range(2000):
        rig.tree.put(key(i), b"v" * 320)
    assert rig.tree.depth() >= 3
    rig.tree.check_invariants()
    for i in range(2000):
        assert rig.tree.get(key(i)) == b"v" * 320


def test_sequential_and_reverse_inserts(rig):
    for i in range(500):
        rig.tree.put(key(i), b"f")
    for i in range(1000, 500, -1):
        rig.tree.put(key(i), b"r")
    rig.tree.check_invariants()
    assert rig.tree.count_records() == 1000


def test_random_inserts_all_found():
    rig = TreeRig()
    rng = random.Random(11)
    keys = rng.sample(range(100_000), 1500)
    for i in keys:
        rig.tree.put(key(i), str(i).encode())
    rig.tree.check_invariants()
    for i in keys:
        assert rig.tree.get(key(i)) == str(i).encode()


def test_scan_ordered_subset(rig):
    for i in range(0, 400, 2):
        rig.tree.put(key(i), bytes([i % 256]))
    got = rig.tree.scan(key(100), 20)
    assert [k for k, _ in got] == [key(i) for i in range(100, 140, 2)]


def test_scan_starting_between_keys(rig):
    for i in range(0, 100, 10):
        rig.tree.put(key(i), b"v")
    got = rig.tree.scan(key(15), 3)
    assert [k for k, _ in got] == [key(20), key(30), key(40)]


def test_scan_past_end(rig):
    rig.tree.put(key(1), b"v")
    assert rig.tree.scan(key(2), 5) == []


def test_scan_more_than_exists(rig):
    for i in range(5):
        rig.tree.put(key(i), b"v")
    assert len(rig.tree.scan(b"", 100)) == 5


def test_scan_across_many_leaves(rig):
    for i in range(3000):
        rig.tree.put(key(i), b"w" * 16)
    got = rig.tree.scan(key(1234), 500)
    assert [k for k, _ in got] == [key(i) for i in range(1234, 1734)]


def test_items_full_iteration(rig):
    inserted = {}
    rng = random.Random(3)
    for i in rng.sample(range(10_000), 800):
        inserted[key(i)] = str(i).encode()
        rig.tree.put(key(i), inserted[key(i)])
    assert dict(rig.tree.items()) == inserted
    assert [k for k, _ in rig.tree.items()] == sorted(inserted)


def test_delete_then_reinsert(rig):
    for i in range(100):
        rig.tree.put(key(i), b"v")
    for i in range(0, 100, 2):
        rig.tree.delete(key(i))
    for i in range(0, 100, 2):
        assert rig.tree.get(key(i)) is None
        assert rig.tree.get(key(i + 1)) == b"v"
    for i in range(0, 100, 2):
        rig.tree.put(key(i), b"w")
    rig.tree.check_invariants()
    assert rig.tree.count_records() == 100


def test_mass_delete_shrinks_tree(rig):
    for i in range(3000):
        rig.tree.put(key(i), b"v" * 320)
    deep = rig.tree.depth()
    assert deep >= 3
    for i in range(3000):
        rig.tree.delete(key(i))
    rig.tree.check_invariants()
    assert rig.tree.count_records() == 0
    assert rig.tree.depth() < deep  # empty-page removal collapsed the root


def test_delete_everything_then_reuse(rig):
    for i in range(1000):
        rig.tree.put(key(i), b"v" * 16)
    for i in range(1000):
        rig.tree.delete(key(i))
    for i in range(500):
        rig.tree.put(key(i), b"again")
    rig.tree.check_invariants()
    assert rig.tree.count_records() == 500


def test_updates_do_not_split(rig):
    for i in range(50):
        rig.tree.put(key(i), b"a" * 32)
    depth = rig.tree.depth()
    for _ in range(20):
        for i in range(50):
            rig.tree.put(key(i), b"b" * 32)
    assert rig.tree.depth() == depth


def test_tiny_cache_still_correct():
    """With an 8-frame cache over hundreds of pages, eviction churn must not
    corrupt anything (exercises load/flush round-trips through the pager)."""
    rig = TreeRig(cache_pages=1)  # floor of 8 frames
    rng = random.Random(5)
    inserted = {}
    for i in rng.sample(range(50_000), 1200):
        rig.tree.put(key(i), str(i).encode() * 3)
        inserted[key(i)] = str(i).encode() * 3
    assert rig.pool.stats.evictions > 100
    rig.tree.check_invariants()
    assert dict(rig.tree.items()) == inserted


@pytest.mark.parametrize("strategy", ["journal", "shadow-table", "det-shadow"])
def test_all_pagers_support_the_tree(strategy):
    rig = TreeRig(strategy=strategy, cache_pages=4)
    for i in range(600):
        rig.tree.put(key(i), b"p" * 24)
    rig.tree.check_invariants()
    assert rig.tree.count_records() == 600


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_property_tree_matches_dict(data):
    rig = TreeRig(cache_pages=4)
    reference: dict[bytes, bytes] = {}
    universe = [key(i) for i in range(300)]
    for _ in range(data.draw(st.integers(50, 300))):
        action = data.draw(st.sampled_from(["put", "put", "put", "delete", "get", "scan"]))
        k = data.draw(st.sampled_from(universe))
        if action == "put":
            v = data.draw(st.binary(min_size=1, max_size=48))
            rig.tree.put(k, v)
            reference[k] = v
        elif action == "delete":
            if k in reference:
                rig.tree.delete(k)
                del reference[k]
        elif action == "get":
            assert rig.tree.get(k) == reference.get(k)
        else:
            n = data.draw(st.integers(1, 20))
            expect = sorted(kk for kk in reference if kk >= k)[:n]
            assert [kk for kk, _ in rig.tree.scan(k, n)] == expect
    rig.tree.check_invariants()
    assert dict(rig.tree.items()) == reference


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_property_interleaved_workload_with_eviction(seed):
    rng = random.Random(seed)
    rig = TreeRig(cache_pages=2, page_size=4096)
    reference = {}
    for _ in range(600):
        i = rng.randrange(2000)
        if rng.random() < 0.2 and reference:
            k = rng.choice(list(reference))
            rig.tree.delete(k)
            del reference[k]
        else:
            v = bytes(rng.randrange(256) for _ in range(rng.randrange(8, 64)))
            rig.tree.put(key(i), v)
            reference[key(i)] = v
    rig.tree.check_invariants()
    assert dict(rig.tree.items()) == reference
