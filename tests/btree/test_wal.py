"""Unit tests for the redo log: packed vs sparse layouts, replay, wrap-around."""

import pytest

from repro.btree.wal import (
    BLOCK_CAPACITY,
    LogOp,
    LogPosition,
    LogRecord,
    RedoLog,
)
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.errors import ConfigError, WalError


@pytest.fixture
def log_device():
    return CompressedBlockDevice(num_blocks=256)


def make_log(device, sparse=False, num_blocks=64):
    return RedoLog(device, start_block=0, num_blocks=num_blocks, sparse=sparse)


def record(lsn, key=b"k", value=b"v" * 16, op=LogOp.PUT, txid=0):
    return LogRecord(lsn, txid, op, key, value)


# ------------------------------------------------------------------ records


def test_record_encode_decode_roundtrip():
    rec = record(7, key=b"alpha", value=b"beta", op=LogOp.DELETE, txid=3)
    encoded = rec.encode()
    decoded, consumed = LogRecord.decode(encoded, 0)
    assert decoded == rec
    assert consumed == len(encoded)


def test_record_decode_rejects_corruption():
    encoded = bytearray(record(1).encode())
    encoded[-1] ^= 0xFF
    assert LogRecord.decode(bytes(encoded), 0) is None


def test_record_decode_zero_padding_is_none():
    assert LogRecord.decode(bytes(64), 0) is None


def test_record_decode_truncated_is_none():
    encoded = record(1).encode()
    assert LogRecord.decode(encoded[: len(encoded) - 3], 0) is None


def test_oversized_record_rejected(log_device):
    log = make_log(log_device)
    with pytest.raises(WalError):
        log.append(record(1, value=b"x" * BLOCK_CAPACITY))


# ------------------------------------------------------------------- config


def test_log_region_validation(log_device):
    with pytest.raises(ConfigError):
        RedoLog(log_device, 0, 1)
    with pytest.raises(ConfigError):
        RedoLog(log_device, 250, 10)


# ----------------------------------------------------------------- flushing


def test_append_is_not_durable_until_flush(log_device):
    log = make_log(log_device)
    log.append(record(1))
    assert log.stats.logical_bytes == 0
    log.flush()
    assert log.stats.logical_bytes == BLOCK_SIZE
    assert log.stats.flushes == 1


def test_flush_without_new_records_writes_nothing(log_device):
    log = make_log(log_device)
    log.append(record(1))
    log.flush()
    before = log.stats.logical_bytes
    log.flush()
    assert log.stats.logical_bytes == before


def test_packed_mode_rewrites_same_block(log_device):
    """Conventional logging: consecutive flushes hit the same LBA (Fig. 7)."""
    log = make_log(log_device, sparse=False)
    for lsn in range(1, 4):
        log.append(record(lsn))
        log.flush()
    assert log.stats.logical_bytes == 3 * BLOCK_SIZE
    # All three flushes rewrote ring block 0: only one block is mapped.
    assert log_device.logical_bytes_used == BLOCK_SIZE


def test_sparse_mode_uses_fresh_block_per_flush(log_device):
    """Sparse logging: each flush seals the block and opens a new LBA (Fig. 8)."""
    log = make_log(log_device, sparse=True)
    for lsn in range(1, 4):
        log.append(record(lsn))
        log.flush()
    assert log.stats.logical_bytes == 3 * BLOCK_SIZE
    assert log_device.logical_bytes_used == 3 * BLOCK_SIZE


def test_sparse_mode_improves_physical_compression(log_device):
    """The whole point of technique 3: same logical volume, less physical."""
    import random

    devices = {}
    for sparse in (False, True):
        device = CompressedBlockDevice(num_blocks=4096)
        log = RedoLog(device, 0, 4096, sparse=sparse)
        rng2 = random.Random(7)
        for lsn in range(1, 200):
            payload = bytes(rng2.randrange(256) for _ in range(64))
            log.append(record(lsn, value=payload))
            log.flush()
        devices[sparse] = log.stats
    # W_log stays (essentially) the same: one 4KB write per flush either way.
    assert devices[True].logical_bytes <= devices[False].logical_bytes
    assert devices[True].logical_bytes >= 0.95 * devices[False].logical_bytes
    # The physical volume drops by far more than the paper's headline factor.
    assert devices[True].physical_bytes < 0.3 * devices[False].physical_bytes


def test_block_overflow_seals_and_continues(log_device):
    log = make_log(log_device)
    big = b"x" * 1500
    for lsn in range(1, 5):  # 4 x ~1.5KB > one 4KB block
        log.append(record(lsn, value=big))
    log.flush()
    records, _ = log.scan(LogPosition(0, 1))
    assert [r.lsn for r in records] == [1, 2, 3, 4]


# ------------------------------------------------------------------- replay


def test_scan_returns_records_in_order(log_device):
    log = make_log(log_device)
    for lsn in range(1, 20):
        log.append(record(lsn, key=str(lsn).encode()))
    log.flush()
    records, end = log.scan(LogPosition(0, 1))
    assert [r.lsn for r in records] == list(range(1, 20))
    assert end.sequence > 1


def test_scan_from_midpoint(log_device):
    log = make_log(log_device, sparse=True)
    for lsn in range(1, 6):
        log.append(record(lsn))
        log.flush()
    midpoint = log.position()
    for lsn in range(6, 9):
        log.append(record(lsn))
        log.flush()
    records, _ = log.scan(midpoint)
    assert [r.lsn for r in records] == [6, 7, 8]


def test_scan_ignores_unflushed_tail(log_device):
    log = make_log(log_device)
    log.append(record(1))
    log.flush()
    log.append(record(2))  # never flushed
    records, _ = log.scan(LogPosition(0, 1))
    assert [r.lsn for r in records] == [1]


def test_scan_stops_at_stale_ring_blocks(log_device):
    """After wrap-around, old blocks with lower sequence end the scan."""
    log = make_log(log_device, sparse=True, num_blocks=8)
    for lsn in range(1, 20):  # wraps the 8-block ring twice
        log.append(record(lsn))
        log.flush()
    start_seq = log.position().sequence - 7
    start = LogPosition((start_seq - 1) % 8, start_seq)
    records, _ = log.scan(start)
    assert [r.lsn for r in records] == list(range(start_seq, 20))


def test_replay_iterator_matches_scan(log_device):
    log = make_log(log_device)
    for lsn in range(1, 10):
        log.append(record(lsn))
    log.flush()
    assert [r.lsn for r in log.replay(LogPosition(0, 1))] == list(range(1, 10))


def test_reset_to_resumes_after_recovery(log_device):
    log = make_log(log_device)
    for lsn in range(1, 5):
        log.append(record(lsn))
    log.flush()
    _, end = log.scan(LogPosition(0, 1))
    fresh = make_log(log_device)
    fresh.reset_to(end)
    fresh.append(record(100))
    fresh.flush()
    records, _ = fresh.scan(end)
    assert [r.lsn for r in records] == [100]


def test_crash_loses_only_unflushed_records(log_device):
    log = make_log(log_device)
    log.append(record(1))
    log.flush()
    log.append(record(2))
    log_device.simulate_crash()
    records, _ = log.scan(LogPosition(0, 1))
    assert [r.lsn for r in records] == [1]


def test_blocks_since_counts_sealed_blocks(log_device):
    log = make_log(log_device, sparse=True)
    start = log.position()
    for lsn in range(1, 4):
        log.append(record(lsn))
        log.flush()
    assert log.blocks_since(start) == 3
