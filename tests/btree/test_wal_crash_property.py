"""Property-based crash tests for the redo log.

Invariant: after any interleaving of appends, flushes, and a crash, a scan
returns exactly the records appended before the last flush, in order —
nothing lost, nothing invented, nothing reordered.

Set ``REPRO_FUZZ_SEED=<n>`` to pin Hypothesis's example generation (see
``tests/fuzz.py``).
"""

from hypothesis import given
from hypothesis import strategies as st

from tests.fuzz import fuzz_settings

from repro.btree.wal import LogOp, LogPosition, LogRecord, RedoLog
from repro.csd.device import CompressedBlockDevice


def record(lsn):
    return LogRecord(lsn, 0, LogOp.PUT, b"k%d" % lsn, b"v" * (lsn % 50))


@fuzz_settings(max_examples=40, deadline=None)
@given(
    sparse=st.booleans(),
    plan=st.lists(st.sampled_from(["append", "flush"]), min_size=1, max_size=60),
)
def test_property_crash_preserves_flushed_prefix(sparse, plan):
    device = CompressedBlockDevice(num_blocks=128)
    log = RedoLog(device, 0, 64, sparse=sparse)
    appended = 0
    flushed = 0
    for action in plan:
        if action == "append":
            appended += 1
            log.append(record(appended))
        else:
            log.flush()
            flushed = appended
    device.simulate_crash()
    recovered, _ = log.scan(LogPosition(0, 1))
    assert [r.lsn for r in recovered] == list(range(1, flushed + 1))


@fuzz_settings(max_examples=25, deadline=None)
@given(
    sparse=st.booleans(),
    n_batches=st.integers(1, 12),
    batch=st.integers(1, 7),
)
def test_property_scan_resumes_from_any_checkpoint(sparse, n_batches, batch):
    """Scanning from the position captured after batch k yields batches > k."""
    device = CompressedBlockDevice(num_blocks=512)
    log = RedoLog(device, 0, 256, sparse=sparse)
    positions = [log.position()]
    lsn = 0
    for _ in range(n_batches):
        for _ in range(batch):
            lsn += 1
            log.append(record(lsn))
        log.flush()
        positions.append(log.position())
    for k, position in enumerate(positions):
        records, _ = log.scan(position)
        lsns = [r.lsn for r in records]
        if sparse:
            # Sparse mode seals at every flush: positions are exact batch
            # boundaries.
            assert lsns == list(range(k * batch + 1, n_batches * batch + 1))
        else:
            # Packed mode may re-read records that share the cursor's block;
            # the scan must still END at the right place and stay ordered.
            assert lsns == sorted(lsns)
            assert (not lsns) or lsns[-1] == n_batches * batch
            assert set(range(k * batch + 1, n_batches * batch + 1)) <= set(
                lsns) or k == len(positions) - 1
