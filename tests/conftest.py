"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.csd.compression import ZlibCompressor
from repro.csd.device import CompressedBlockDevice, PlainSSD
from repro.sim.rng import DeterministicRng


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(0xC0FFEE)


@pytest.fixture
def device() -> CompressedBlockDevice:
    """A small compressing device, plenty for unit tests."""
    return CompressedBlockDevice(num_blocks=4096, compressor=ZlibCompressor(level=1))


@pytest.fixture
def plain_ssd() -> PlainSSD:
    return PlainSSD(num_blocks=4096)
