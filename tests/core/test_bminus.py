"""Integration tests for the B⁻-tree facade."""

import random

import pytest

from repro.btree.engine import BTreeConfig, BTreeEngine
from repro.core.bminus import BMinusConfig, BMinusTree
from repro.csd.device import CompressedBlockDevice
from repro.errors import ConfigError, KeyNotFoundError
from repro.metrics.counters import compute_wa
from repro.sim.clock import SimClock


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


def value(rng, size=120):
    """The paper's record content: half random bytes, half zeros."""
    return rng.randbytes(size // 2) + bytes(size - size // 2)


def make_config(**overrides) -> BMinusConfig:
    base = dict(
        page_size=8192,
        cache_bytes=1 << 17,
        max_pages=4096,
        log_blocks=512,
        log_flush_policy="commit",
    )
    base.update(overrides)
    return BMinusConfig(**base)


def make_tree(device=None, **overrides):
    device = device or CompressedBlockDevice(num_blocks=400_000)
    return BMinusTree(device, make_config(**overrides)), device


def test_basic_crud():
    tree, _ = make_tree()
    tree.put(key(1), b"one")
    tree.commit()
    assert tree.get(key(1)) == b"one"
    tree.delete(key(1))
    assert tree.get(key(1)) is None
    with pytest.raises(KeyNotFoundError):
        tree.delete(key(1))


def test_invalid_threshold_rejected():
    device = CompressedBlockDevice(num_blocks=400_000)
    with pytest.raises(ConfigError):
        BMinusTree(device, make_config(threshold_t=0))


def test_scan_and_items():
    tree, _ = make_tree()
    rng = random.Random(0)
    expected = {}
    for i in rng.sample(range(10_000), 500):
        expected[key(i)] = value(rng, 40)
        tree.put(key(i), expected[key(i)])
    tree.commit()
    assert dict(tree.items()) == expected
    got = tree.scan(key(0), 100)
    assert [k for k, _ in got] == sorted(expected)[:100]


def test_workload_with_eviction_churn():
    tree, _ = make_tree(cache_bytes=1 << 16)
    rng = random.Random(7)
    reference = {}
    for _ in range(5000):
        k = key(rng.randrange(1500))
        v = value(rng)
        tree.put(k, v)
        reference[k] = v
        tree.commit()
    tree.engine.tree.check_invariants()
    assert dict(tree.items()) == reference
    assert tree.pager.stats.delta_flushes > tree.pager.stats.full_flushes


def test_reopen_after_clean_close():
    tree, device = make_tree()
    rng = random.Random(1)
    expected = {key(i): value(rng) for i in range(1000)}
    for k, v in expected.items():
        tree.put(k, v)
    tree.commit()
    tree.close()
    reopened = BMinusTree.open(device, make_config())
    assert dict(reopened.items()) == expected


def test_crash_recovery_preserves_committed_records():
    tree, device = make_tree(cache_bytes=1 << 16)
    rng = random.Random(5)
    committed = {}
    for _ in range(3000):
        k = key(rng.randrange(800))
        if rng.random() < 0.15 and committed:
            victim = rng.choice(sorted(committed))
            tree.delete(victim)
            del committed[victim]
        else:
            v = value(rng, rng.randrange(16, 120))
            tree.put(k, v)
            committed[k] = v
        tree.commit()
    device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
    recovered = BMinusTree.open(device, make_config(cache_bytes=1 << 16))
    assert dict(recovered.items()) == committed
    recovered.engine.tree.check_invariants()


def test_repeated_crashes():
    device = CompressedBlockDevice(num_blocks=400_000)
    tree = BMinusTree(device, make_config(cache_bytes=1 << 16))
    rng = random.Random(8)
    committed = {}
    for round_no in range(3):
        for _ in range(700):
            k = key(rng.randrange(400))
            v = value(rng, 64)
            tree.put(k, v)
            committed[k] = v
            tree.commit()
        device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
        tree = BMinusTree.open(device, make_config(cache_bytes=1 << 16))
        assert dict(tree.items()) == committed, f"round {round_no}"


def test_wa_beats_baseline_b_tree():
    """The headline claim: B⁻ cuts physical WA by a large factor versus the
    conventional-shadowing baseline on identical workloads."""

    def run_workload(store, commit):
        rng = random.Random(3)
        for _ in range(4000):
            store.put(key(rng.randrange(1500)), value(rng))
            commit()

    device_b = CompressedBlockDevice(num_blocks=400_000)
    baseline = BTreeEngine(device_b, BTreeConfig(
        page_size=8192, cache_bytes=1 << 16, max_pages=4096, log_blocks=512,
        atomicity="shadow-table", wal_mode="packed", log_flush_policy="commit",
    ))
    run_workload(baseline, baseline.commit)
    base_start = baseline.traffic_snapshot()
    run_workload(baseline, baseline.commit)
    base_wa = compute_wa(baseline.traffic_snapshot().delta(base_start)).wa_total

    tree, _ = make_tree(cache_bytes=1 << 16)
    run_workload(tree, tree.commit)
    bm_start = tree.traffic_snapshot()
    run_workload(tree, tree.commit)
    bm_wa = compute_wa(tree.traffic_snapshot().delta(bm_start)).wa_total

    assert bm_wa < base_wa / 3


def test_beta_reflects_live_deltas():
    tree, _ = make_tree(cache_bytes=1 << 16)
    rng = random.Random(2)
    for _ in range(3000):
        tree.put(key(rng.randrange(1000)), value(rng))
        tree.commit()
    assert 0.0 < tree.beta() < 0.5


def test_interval_log_policy_with_clock():
    clock = SimClock()
    device = CompressedBlockDevice(num_blocks=400_000)
    tree = BMinusTree(device, make_config(
        log_flush_policy="interval", log_flush_interval=60.0), clock=clock)
    rng = random.Random(4)
    for i in range(200):
        tree.put(key(i), value(rng))
        tree.commit()
        clock.advance(0.1)
        tree.tick()
    # 20 simulated seconds < interval: no interval flush has happened yet.
    assert tree.engine.wal.stats.flushes <= 2  # checkpoint-driven only
    clock.advance(60)
    tree.tick()
    assert tree.engine.wal.stats.flushes >= 1


def test_wa_report_decomposition():
    tree, _ = make_tree(cache_bytes=1 << 16)
    rng = random.Random(6)
    for _ in range(2000):
        tree.put(key(rng.randrange(700)), value(rng))
        tree.commit()
    report = tree.wa_report()
    assert report.wa_e == 0.0 or report.wa_e < 0.05  # meta page only
    assert report.wa_total == pytest.approx(
        report.wa_log + report.wa_pg + report.wa_e)
    assert report.wa_total < report.wa_total_logical


def test_sixteen_kb_pages():
    tree, _ = make_tree(page_size=16384, segment_size=256, cache_bytes=1 << 18)
    rng = random.Random(9)
    expected = {}
    for _ in range(2000):
        k = key(rng.randrange(600))
        v = value(rng)
        tree.put(k, v)
        expected[k] = v
        tree.commit()
    tree.engine.tree.check_invariants()
    assert dict(tree.items()) == expected
    assert tree.pager.stats.delta_flushes > 0
