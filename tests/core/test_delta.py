"""Unit and property tests for localized page modification logging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.page import Page
from repro.core.delta import (
    DELTA_HEADER_SIZE,
    DeltaBlock,
    DeltaShadowPager,
    delta_capacity,
)
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng

PAGE_SIZE = 8192
MAX_PAGES = 64


def make_pager(threshold=2048, segment_size=128, device=None):
    device = device or CompressedBlockDevice(num_blocks=8192)
    return DeltaShadowPager(
        device, PAGE_SIZE, MAX_PAGES, 1,
        threshold=threshold, segment_size=segment_size,
    )


def dirty_page(pager, nonzero=512):
    rng = DeterministicRng(1)
    page = Page(PAGE_SIZE, pager.allocate_page_id())
    payload = rng.random_bytes(nonzero)
    offset = page.allocate_cell(len(payload))
    page.write_cell(offset, payload)
    page.insert_slot(0, offset)
    return page


# ---------------------------------------------------------------- codec


def test_delta_capacity_geometry():
    assert delta_capacity(8192, 128) == BLOCK_SIZE - DELTA_HEADER_SIZE - 8
    assert delta_capacity(16384, 256) == BLOCK_SIZE - DELTA_HEADER_SIZE - 8
    assert delta_capacity(8192, 256) == BLOCK_SIZE - DELTA_HEADER_SIZE - 4


def test_delta_block_roundtrip():
    block = DeltaBlock(
        page_id=7, base_lsn=10, lsn=12, segment_size=128,
        segments=[0, 3, 63], payload=b"x" * (3 * 128),
    )
    decoded = DeltaBlock.decode(block.encode(PAGE_SIZE), PAGE_SIZE)
    assert decoded is not None
    assert decoded.page_id == 7
    assert decoded.base_lsn == 10
    assert decoded.lsn == 12
    assert decoded.segments == [0, 3, 63]
    assert decoded.payload == b"x" * (3 * 128)


def test_delta_block_decode_rejects_garbage():
    assert DeltaBlock.decode(bytes(BLOCK_SIZE), PAGE_SIZE) is None
    assert DeltaBlock.decode(b"\xaa" * BLOCK_SIZE, PAGE_SIZE) is None


def test_delta_block_decode_rejects_bitflip():
    encoded = bytearray(
        DeltaBlock(1, 1, 2, 128, [0], b"y" * 128).encode(PAGE_SIZE)
    )
    encoded[100] ^= 1
    assert DeltaBlock.decode(bytes(encoded), PAGE_SIZE) is None


def test_delta_block_overflow_rejected():
    with pytest.raises(ConfigError):
        DeltaBlock(1, 1, 2, 128, list(range(40)), b"z" * (40 * 128)).encode(PAGE_SIZE)


def test_apply_to_reconstructs():
    base = bytes(range(256)) * (PAGE_SIZE // 256)
    segments = [1, 5]
    payload = b"\xaa" * 128 + b"\xbb" * 128
    block = DeltaBlock(1, 1, 2, 128, segments, payload)
    image = block.apply_to(base)
    assert image[128:256] == b"\xaa" * 128
    assert image[5 * 128 : 6 * 128] == b"\xbb" * 128
    assert image[:128] == base[:128]
    assert image[256 : 5 * 128] == base[256 : 5 * 128]


# ----------------------------------------------------------- configuration


def test_segment_size_validation():
    with pytest.raises(ConfigError):
        make_pager(segment_size=100)  # not a multiple of the dirty grain
    with pytest.raises(ConfigError):
        make_pager(segment_size=192 + 128)  # does not divide the page size


def test_threshold_validation():
    with pytest.raises(ConfigError):
        make_pager(threshold=0)
    with pytest.raises(ConfigError):
        make_pager(threshold=BLOCK_SIZE + 1)


def test_threshold_clamped_to_block_capacity():
    pager = make_pager(threshold=4096)
    assert pager.threshold == delta_capacity(PAGE_SIZE, 128)


# --------------------------------------------------------------- flushing


def test_first_flush_is_full():
    pager = make_pager()
    page = dirty_page(pager)
    pager.flush(page)
    assert pager.stats.full_flushes == 1
    assert pager.stats.delta_flushes == 0


def test_small_change_uses_delta_flush():
    pager = make_pager()
    page = dirty_page(pager)
    pager.flush(page)
    page.buf[4000:4010] = b"0123456789"
    page.mark_dirty(4000, 4010)
    page.lsn = 5
    pager.flush(page)
    assert pager.stats.delta_flushes == 1
    # A delta flush writes one 4KB block, not the whole page.
    assert pager.stats.page_logical_bytes == PAGE_SIZE + BLOCK_SIZE


def test_delta_flush_physical_volume_is_tiny():
    pager = make_pager()
    page = dirty_page(pager)
    pager.flush(page)
    before = pager.stats.page_physical_bytes
    page.buf[4000:4016] = b"A" * 16
    page.mark_dirty(4000, 4016)
    page.lsn = 5
    pager.flush(page)
    delta_cost = pager.stats.page_physical_bytes - before
    # header + trailer + one data segment, compressed: far below 4KB.
    assert delta_cost < 600


def test_load_reconstructs_from_base_plus_delta():
    pager = make_pager()
    page = dirty_page(pager)
    page.lsn = 1
    pager.flush(page)
    page.buf[4000:4010] = b"0123456789"
    page.mark_dirty(4000, 4010)
    page.lsn = 2
    pager.flush(page)
    loaded = pager_reload(pager).load(page.page_id)
    assert loaded.lsn == 2
    assert bytes(loaded.buf[4000:4010]) == b"0123456789"
    assert loaded.image() == page.image()


def pager_reload(pager):
    """A fresh pager over the same device (host restart)."""
    pager.device.flush()
    return DeltaShadowPager(
        pager.device, pager.page_size, pager.max_pages, pager.region_start,
        threshold=pager.threshold, segment_size=pager.segment_size,
    )


def test_deltas_accumulate_until_threshold():
    pager = make_pager(threshold=512, segment_size=128)
    page = dirty_page(pager)
    pager.flush(page)
    # Header + trailer already cost 2 segments; two more data segments keep
    # |delta| at 4*128 = 512 <= T, a fifth pushes past it.
    offsets = [1000, 2000, 3000]
    for i, offset in enumerate(offsets):
        page.buf[offset] ^= 0xFF
        page.mark_dirty(offset, offset + 1)
        page.lsn = 10 + i
        pager.flush(page)
    assert pager.stats.full_flushes >= 2  # initial + at least one reset


def test_full_reset_clears_fvec_and_trims_delta():
    pager = make_pager(threshold=256, segment_size=128)
    page = dirty_page(pager)
    pager.flush(page)
    page.buf[1000] ^= 1
    page.mark_dirty(1000, 1001)
    page.lsn = 2
    pager.flush(page)  # |delta| = header+trailer+1 > 256 -> full reset
    assert pager.stats.full_flushes == 2
    assert pager._fvec[page.page_id] == set()
    # The delta block was trimmed: reload sees the full image, no delta.
    loaded = pager_reload(pager).load(page.page_id)
    assert loaded.image() == page.image()


def test_stale_delta_ignored_when_base_lsn_mismatches():
    """Crash lost the delta-block TRIM of a full reset: the stale delta must
    not be applied to the newer base image."""
    pager = make_pager()
    page = dirty_page(pager)
    page.lsn = 1
    pager.flush(page)  # full
    page.buf[3000:3004] = b"OLD!"
    page.mark_dirty(3000, 3004)
    page.lsn = 2
    pager.flush(page)  # delta with base_lsn=1
    # Full reset whose delta TRIM is lost in the crash:
    page.buf[3000:3004] = b"NEW!"
    page.mark_dirty(3000, 3004)
    page.finalize(lsn=3)
    image = page.image()
    target = 1 - pager._valid_slot[page.page_id]
    pager.device.write_blocks(pager._slot_lba(page.page_id, target), image)
    # persist the new base but not the trim of slot/delta
    pager.device.flush()
    fresh = DeltaShadowPager(pager.device, PAGE_SIZE, MAX_PAGES, 1)
    loaded = fresh.load(page.page_id)
    assert loaded.lsn == 3
    assert bytes(loaded.buf[3000:3004]) == b"NEW!"


def test_torn_delta_write_falls_back_to_base():
    pager = make_pager()
    page = dirty_page(pager)
    page.lsn = 1
    pager.flush(page)
    base_image = page.image()
    # A corrupt (torn) delta block lands on storage.
    pager.device.write_block(pager._delta_lba(page.page_id), b"\x55" * BLOCK_SIZE)
    pager.device.flush()
    loaded = pager_reload(pager).load(page.page_id)
    assert loaded.image() == base_image


def test_free_page_clears_delta_state():
    pager = make_pager()
    page = dirty_page(pager)
    pager.flush(page)
    pager.free_page(page.page_id)
    pager.apply_deferred_frees()
    assert page.page_id not in pager._fvec
    assert page.page_id not in pager._base_lsn
    assert pager.device.ftl.extent_size(pager._delta_lba(page.page_id)) == 0


# ---------------------------------------------------------------- metrics


def test_beta_accounting():
    pager = make_pager()
    page = dirty_page(pager)
    pager.flush(page)
    assert pager.beta() == 0.0
    page.buf[2000] ^= 1
    page.mark_dirty(2000, 2001)
    page.lsn = 2
    pager.flush(page)
    expected = len(pager._fvec[page.page_id]) * 128 / PAGE_SIZE
    assert pager.beta() == pytest.approx(expected)
    assert pager.delta_bytes_live() == len(pager._fvec[page.page_id]) * 128


# --------------------------------------------------------------- property


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_property_reconstruction_equals_in_memory_image(data):
    """After any sequence of mutations and flushes, a reload through the
    delta path reproduces the exact in-memory image."""
    seed = data.draw(st.integers(0, 2**32))
    rng = DeterministicRng(seed)
    pager = make_pager(threshold=data.draw(st.sampled_from([512, 1024, 2048])),
                       segment_size=data.draw(st.sampled_from([128, 256])))
    page = dirty_page(pager)
    lsn = 1
    page.lsn = lsn
    pager.flush(page)
    for _ in range(data.draw(st.integers(1, 12))):
        # Mutate a random range.
        start = rng.randrange(64, PAGE_SIZE - 200)
        length = rng.randrange(1, 150)
        page.buf[start : start + length] = rng.random_bytes(length)
        page.mark_dirty(start, start + length)
        lsn += 1
        page.lsn = lsn
        pager.flush(page)
        if rng.random() < 0.3:
            loaded = pager_reload(pager).load(page.page_id)
            assert loaded.image() == page.image()
    loaded = pager_reload(pager).load(page.page_id)
    assert loaded.image() == page.image()


@settings(max_examples=15, deadline=None)
@given(
    seg_size=st.sampled_from([64, 128, 256, 512]),
    nsegs=st.integers(0, 10),
)
def test_property_delta_codec_roundtrip(seg_size, nsegs):
    rng = DeterministicRng(nsegs)
    k = PAGE_SIZE // seg_size
    if nsegs * seg_size > delta_capacity(PAGE_SIZE, seg_size):
        return
    segments = sorted(rng.sample(range(k), nsegs))
    payload = rng.random_bytes(nsegs * seg_size)
    block = DeltaBlock(3, 9, 11, seg_size, segments, payload)
    decoded = DeltaBlock.decode(block.encode(PAGE_SIZE), PAGE_SIZE)
    assert decoded is not None
    assert decoded.segments == segments
    assert decoded.payload == payload
