"""Property-based crash tests for the delta pager.

Invariant: whatever the crash point — mid-delta-write, mid-full-flush,
before TRIMs become durable, with arbitrary per-block tearing — a fresh
pager recovers *some durably flushed image* of the page: exactly the last
flushed image when the final flush's blocks all survived, and never a torn
or frankensteined one.

Set ``REPRO_FUZZ_SEED=<n>`` to replay one scenario; failures print the seed
to replay (see ``tests/fuzz.py``).
"""

from hypothesis import given
from hypothesis import strategies as st

from tests.fuzz import fuzz_settings, report_seed, seed_strategy

from repro.btree.page import Page
from repro.core.delta import DeltaShadowPager
from repro.csd.device import CompressedBlockDevice
from repro.sim.rng import DeterministicRng

PAGE_SIZE = 8192


def make_pager(device):
    return DeltaShadowPager(device, PAGE_SIZE, 16, 1,
                            threshold=1024, segment_size=128)


@fuzz_settings(max_examples=40, deadline=None)
@given(
    seed=seed_strategy(),
    n_flushes=st.integers(1, 10),
    survival=st.floats(0.0, 1.0),
)
def test_property_crash_recovers_a_flushed_image(seed, n_flushes, survival):
    rng = DeterministicRng(seed)
    device = CompressedBlockDevice(num_blocks=512)
    pager = make_pager(device)
    page = Page(PAGE_SIZE, pager.allocate_page_id())
    payload = rng.random_bytes(400)
    offset = page.allocate_cell(len(payload))
    page.write_cell(offset, payload)
    page.insert_slot(0, offset)

    flushed_images = []
    lsn = 0
    for _ in range(n_flushes):
        start = rng.randrange(64, PAGE_SIZE - 300)
        length = rng.randrange(1, 200)
        page.buf[start : start + length] = rng.random_bytes(length)
        page.mark_dirty(start, start + length)
        lsn += 1
        page.lsn = lsn
        pager.flush(page)
        flushed_images.append(page.image())

    # Crash: each unsynced block independently survives or not.  (The pager
    # calls device.flush() inside flush(), so in this design everything
    # written is durable; the tearing exercises TRIM loss and stale slots.)
    device.simulate_crash(survives=lambda lba: rng.random() < survival)

    fresh = make_pager(device)
    with report_seed(seed):
        recovered = fresh.load(page.page_id)
        assert recovered.image() in flushed_images, (
            "recovered image is not any durably flushed version"
        )
        assert recovered.image() == flushed_images[-1]


@fuzz_settings(max_examples=30, deadline=None)
@given(seed=seed_strategy())
def test_property_torn_final_flush_falls_back_one_version(seed):
    """If the final full flush tears, recovery lands on the previous image."""
    rng = DeterministicRng(seed)
    device = CompressedBlockDevice(num_blocks=512)
    pager = make_pager(device)
    page = Page(PAGE_SIZE, pager.allocate_page_id())
    payload = rng.random_bytes(300)
    offset = page.allocate_cell(len(payload))
    page.write_cell(offset, payload)
    page.insert_slot(0, offset)
    page.lsn = 1
    pager.flush(page)
    device.flush()
    good = page.image()

    # Hand-craft a torn full flush to the shadow slot: only one of its two
    # 4KB blocks lands.
    page.buf[5000:5100] = rng.random_bytes(100)
    page.mark_dirty(5000, 5100)
    page.finalize(lsn=2)
    target = 1 - pager._valid_slot[page.page_id]
    lba = pager._slot_lba(page.page_id, target)
    device.write_blocks(lba, page.image())
    surviving_block = lba + rng.randrange(2)
    device.simulate_crash(survives=lambda b: b == surviving_block)

    fresh = make_pager(device)
    with report_seed(seed):
        recovered = fresh.load(page.page_id)
        assert recovered.image() == good
        assert recovered.lsn == 1
