"""Tests for the delta pager's known-slot fast read paths and layout.

After the first load arbitrates the valid slot, subsequent loads issue a
single contiguous request of exactly ``l_pg + 4KB`` (page + modification
log), regardless of which slot is valid — the paper's single-read-request
property, enabled by the [slot0 | delta | slot1] layout.
"""

import pytest

from repro.btree.page import Page
from repro.core.delta import DeltaShadowPager
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.sim.rng import DeterministicRng

PAGE_SIZE = 8192


@pytest.fixture
def pager():
    device = CompressedBlockDevice(num_blocks=8192)
    return DeltaShadowPager(device, PAGE_SIZE, 64, 1,
                            threshold=2048, segment_size=128)


def seeded_page(pager, lsn=1):
    rng = DeterministicRng(3)
    page = Page(PAGE_SIZE, pager.allocate_page_id())
    payload = rng.random_bytes(600)
    offset = page.allocate_cell(len(payload))
    page.write_cell(offset, payload)
    page.insert_slot(0, offset)
    page.lsn = lsn
    return page


def mutate(page, where, lsn):
    page.buf[where : where + 8] = lsn.to_bytes(8, "big")
    page.mark_dirty(where, where + 8)
    page.lsn = lsn


def test_layout_delta_between_slots(pager):
    base = pager._page_base(0)
    blocks = PAGE_SIZE // BLOCK_SIZE
    assert pager._slot_lba(0, 0) == base
    assert pager._delta_lba(0) == base + blocks
    assert pager._slot_lba(0, 1) == base + blocks + 1
    # Page regions do not overlap.
    assert pager._page_base(1) == base + 2 * blocks + 1


def test_fast_path_reads_page_plus_delta_only(pager):
    page = seeded_page(pager)
    pager.flush(page)  # full flush -> slot 0, bitmap known
    mutate(page, 3000, lsn=2)
    pager.flush(page)  # delta flush
    device = pager.device
    before = device.stats.logical_bytes_read
    loaded = pager.load(page.page_id)
    read_bytes = device.stats.logical_bytes_read - before
    assert read_bytes == PAGE_SIZE + BLOCK_SIZE  # not the whole region
    assert loaded.image() == page.image()


@pytest.mark.parametrize("full_flushes", [1, 2])
def test_fast_path_works_for_both_slots(pager, full_flushes):
    """After 1 full flush the valid slot is 0; after 2 it is 1."""
    page = seeded_page(pager)
    pager.flush(page)
    for i in range(full_flushes - 1):
        page.mark_all_dirty()  # force a full (reset) flush
        page.lsn = 10 + i
        pager.flush(page)
    expected_slot = (full_flushes - 1) % 2
    assert pager._valid_slot[page.page_id] == expected_slot
    mutate(page, 2000, lsn=50)
    pager.flush(page)  # delta flush against the current slot
    loaded = pager.load(page.page_id)
    assert loaded.image() == page.image()


def test_cold_load_reads_whole_region_once_then_fast(pager):
    page = seeded_page(pager)
    pager.flush(page)
    mutate(page, 1000, lsn=2)
    pager.flush(page)
    pager.device.flush()
    fresh = DeltaShadowPager(pager.device, PAGE_SIZE, 64, 1,
                             threshold=2048, segment_size=128)
    device = pager.device
    before = device.stats.logical_bytes_read
    first = fresh.load(page.page_id)  # arbitration: full region
    cold_bytes = device.stats.logical_bytes_read - before
    assert cold_bytes == 2 * PAGE_SIZE + BLOCK_SIZE
    before = device.stats.logical_bytes_read
    second = fresh.load(page.page_id)  # bitmap known: page + delta
    warm_bytes = device.stats.logical_bytes_read - before
    assert warm_bytes == PAGE_SIZE + BLOCK_SIZE
    assert first.image() == second.image() == page.image()


def test_cold_load_physically_cheap(pager):
    """The trimmed slot and delta padding cost ~nothing to fetch from flash."""
    page = seeded_page(pager)
    pager.flush(page)
    pager.device.flush()
    fresh = DeltaShadowPager(pager.device, PAGE_SIZE, 64, 1)
    device = pager.device
    before = device.stats.physical_bytes_read
    fresh.load(page.page_id)
    physical = device.stats.physical_bytes_read - before
    # Far below the 20KB logical transfer: roughly the compressed live page.
    assert physical < 2500


def test_many_delta_cycles_roundtrip(pager):
    """Alternating delta flushes and resets across both slots stay readable."""
    page = seeded_page(pager)
    pager.flush(page)
    lsn = 1
    for cycle in range(6):
        for _ in range(3):
            lsn += 1
            mutate(page, 1024 + (lsn * 640) % 6000, lsn)
            pager.flush(page)
        lsn += 1
        page.mark_all_dirty()
        page.lsn = lsn
        pager.flush(page)  # reset
        pager.device.flush()
        fresh = DeltaShadowPager(pager.device, PAGE_SIZE, 64, 1)
        assert fresh.load(page.page_id).image() == page.image(), cycle
