"""ScratchArena behaviour + the write path's no-copy guarantees.

The zero-copy work only holds if the copy count stays pinned: exactly one
immutable snapshot per block write, taken at the device journal boundary
and nowhere else.  These tests assert object *identity* through the write
path, so an accidental re-introduced ``bytes(...)`` copy fails loudly.
"""

import pytest

from repro.core.bminus import BMinusConfig, BMinusTree
from repro.csd.arena import ScratchArena
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice


# --------------------------------------------------------------- ScratchArena


def test_borrow_hands_out_zeroed_slab_of_slab_size():
    arena = ScratchArena(128)
    slab = arena.borrow()
    assert isinstance(slab, bytearray)
    assert len(slab) == 128
    assert slab == bytes(128)


def test_release_then_borrow_recycles_and_rezeroes():
    arena = ScratchArena(64)
    slab = arena.borrow()
    slab[:] = b"\xff" * 64
    arena.release(slab)
    again = arena.borrow()
    assert again is slab, "free-listed slab was not recycled"
    assert again == bytes(64), "recycled slab was not re-zeroed"
    assert arena.borrows == 2
    assert arena.reuses == 1


def test_release_rejects_wrong_size_slab():
    arena = ScratchArena(64)
    with pytest.raises(ValueError, match="does not match"):
        arena.release(bytearray(65))


def test_capacity_bounds_the_free_list():
    arena = ScratchArena(16, capacity=2)
    slabs = [arena.borrow() for _ in range(4)]
    for slab in slabs:
        arena.release(slab)
    assert len(arena) == 2, "free list exceeded its capacity"


def test_constructor_validates_arguments():
    with pytest.raises(ValueError):
        ScratchArena(0)
    with pytest.raises(ValueError):
        ScratchArena(16, capacity=0)


# ----------------------------------------------------- device journal no-copy


def test_write_block_journals_bytes_payload_by_identity():
    """A `bytes` payload reaches the pending journal as the same object —
    the device takes zero copies for already-immutable payloads."""
    device = CompressedBlockDevice(num_blocks=64)
    payload = bytes(range(256)) * 16
    device.write_block(3, payload)
    assert device._pending[3] is payload


def test_write_block_snapshots_mutable_payload_once():
    """A mutable slab is snapshotted exactly at the journal boundary, so
    recycling the slab afterwards cannot corrupt journalled data."""
    device = CompressedBlockDevice(num_blocks=64)
    slab = bytearray(BLOCK_SIZE)
    slab[:16] = b"A" * 16
    device.write_block(5, slab)
    journalled = device._pending[5]
    assert journalled is not slab
    assert isinstance(journalled, bytes)
    slab[:16] = b"B" * 16  # recycle: must not reach the journal
    assert journalled[:16] == b"A" * 16


def test_write_blocks_journals_zero_copy_views():
    """Multi-block writes journal memoryview chunks over the one payload
    object — per-block copies would show as independent objects."""
    device = CompressedBlockDevice(num_blocks=64)
    payload = bytes(4 * BLOCK_SIZE)
    device.write_blocks(8, payload)
    for i in range(4):
        chunk = device._pending[8 + i]
        assert isinstance(chunk, memoryview)
        assert chunk.obj is payload


# -------------------------------------------------- engine write-path no-copy


def test_wal_sealed_blocks_reach_journal_by_identity():
    """A sealed WAL block image is snapshotted once (at sealing) and flows
    to the device journal as that same object."""
    from repro.btree.wal import LogOp, RedoLog

    device = CompressedBlockDevice(num_blocks=256)
    wal = RedoLog(device, start_block=1, num_blocks=16, sparse=True)
    big = bytes(1500)
    for i in range(4):  # several appends seal at least one block
        wal.append_kv(i + 1, 1, LogOp.PUT, b"k%d" % i, big)
    sealed = [image for _, image in wal._pending_full]
    assert sealed, "workload never sealed a WAL block"
    wal.flush()  # drains the device journal into stable storage
    stable = {id(v) for v in device._stable.values()}
    for image in sealed:
        assert id(image) in stable, "sealed WAL image was re-copied"


def test_delta_flushes_recycle_arena_slabs():
    """Consecutive delta-block flushes reuse the pager's scratch slabs
    instead of allocating fresh buffers."""
    device = CompressedBlockDevice(num_blocks=400_000)
    store = BMinusTree(device, BMinusConfig(log_flush_policy="commit"))
    for i in range(300):
        store.put(b"%08d" % i, bytes(64))
    store.commit()
    store.checkpoint()  # first flush: full page images
    for round_ in range(3):
        for i in range(0, 300, 7):
            store.put(b"%08d" % i, bytes([round_ + 1]) * 64)
        store.commit()
        store.checkpoint()  # localized dirt: delta flushes
    arena = store.pager._arena
    assert arena.borrows > 3, "workload never took the delta-encode path"
    assert arena.reuses >= arena.borrows - 1, (
        f"slabs not recycled: {arena.borrows} borrows, {arena.reuses} reuses"
    )
