"""Unit tests for the per-block compressor models."""

import pytest

from repro.csd.compression import (
    ZERO_BLOCK_COST,
    NullCompressor,
    ZeroRunEstimator,
    ZlibCompressor,
)
from repro.csd.device import BLOCK_SIZE


@pytest.fixture(params=["zlib", "estimator", "null"])
def compressor(request):
    return {
        "zlib": ZlibCompressor(),
        "estimator": ZeroRunEstimator(),
        "null": NullCompressor(),
    }[request.param]


def test_empty_block_is_free(compressor):
    assert compressor.compressed_size(b"") == 0


def test_never_exceeds_input_size(compressor, rng):
    block = rng.random_bytes(BLOCK_SIZE)
    assert compressor.compressed_size(block) <= BLOCK_SIZE


def test_ratio_bounds(compressor, rng):
    block = rng.random_bytes(1024) + bytes(3072)
    assert 0.0 < compressor.ratio(block) <= 1.0


def test_ratio_of_empty_block_is_one(compressor):
    assert compressor.ratio(b"") == 1.0


def test_zlib_zero_block_nearly_free():
    assert ZlibCompressor().compressed_size(bytes(BLOCK_SIZE)) == ZERO_BLOCK_COST


def test_zlib_random_block_incompressible(rng):
    block = rng.random_bytes(BLOCK_SIZE)
    size = ZlibCompressor().compressed_size(block)
    assert size > 0.95 * BLOCK_SIZE


def test_zlib_half_zero_block_roughly_halves(rng):
    block = rng.random_bytes(BLOCK_SIZE // 2) + bytes(BLOCK_SIZE // 2)
    size = ZlibCompressor().compressed_size(block)
    assert 0.4 * BLOCK_SIZE < size < 0.6 * BLOCK_SIZE


def test_zlib_level_validation():
    with pytest.raises(ValueError):
        ZlibCompressor(level=0)
    with pytest.raises(ValueError):
        ZlibCompressor(level=10)


def test_estimator_zero_block_nearly_free():
    assert ZeroRunEstimator().compressed_size(bytes(BLOCK_SIZE)) == ZERO_BLOCK_COST


def test_estimator_counts_nonzero_bytes(rng):
    payload = bytes(b % 255 + 1 for b in rng.random_bytes(100))  # 100 non-zero bytes
    block = payload + bytes(BLOCK_SIZE - 100)
    assert ZeroRunEstimator().compressed_size(block) == ZERO_BLOCK_COST + 100


def test_estimator_entropy_factor():
    payload = bytes([7] * 1000) + bytes(BLOCK_SIZE - 1000)
    est = ZeroRunEstimator(entropy_factor=0.5)
    assert est.compressed_size(payload) == ZERO_BLOCK_COST + 500


def test_estimator_parameter_validation():
    with pytest.raises(ValueError):
        ZeroRunEstimator(entropy_factor=0.0)
    with pytest.raises(ValueError):
        ZeroRunEstimator(entropy_factor=1.5)
    with pytest.raises(ValueError):
        ZeroRunEstimator(header_cost=-1)


def test_null_compressor_identity(rng):
    block = rng.random_bytes(512)
    assert NullCompressor().compressed_size(block) == 512


def test_estimator_tracks_zlib_on_workload_content(rng):
    """The fast estimator should stay within ~15% of real zlib on the paper's
    half-zero/half-random record content."""
    zlib_c = ZlibCompressor()
    est = ZeroRunEstimator()
    for _ in range(10):
        block = rng.random_bytes(BLOCK_SIZE // 2) + bytes(BLOCK_SIZE // 2)
        real = zlib_c.compressed_size(block)
        approx = est.compressed_size(block)
        assert abs(real - approx) / real < 0.15
