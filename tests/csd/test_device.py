"""Unit and property tests for the simulated block devices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csd.compression import ZlibCompressor
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.errors import AlignmentError, CapacityError, OutOfRangeError
from repro.sim.rng import DeterministicRng


def make_block(rng, nonzero_bytes=BLOCK_SIZE):
    return rng.random_bytes(nonzero_bytes) + bytes(BLOCK_SIZE - nonzero_bytes)


def test_unwritten_block_reads_zero(device):
    assert device.read_block(7) == bytes(BLOCK_SIZE)


def test_read_after_write(device, rng):
    block = make_block(rng)
    device.write_block(3, block)
    assert device.read_block(3) == block


def test_multi_block_roundtrip(device, rng):
    data = rng.random_bytes(3 * BLOCK_SIZE)
    device.write_blocks(10, data)
    assert device.read_blocks(10, 3) == data


def test_overwrite_replaces(device, rng):
    device.write_block(0, make_block(rng))
    second = make_block(rng)
    device.write_block(0, second)
    assert device.read_block(0) == second


def test_trim_reads_as_zero(device, rng):
    device.write_block(5, make_block(rng))
    device.trim(5)
    assert device.read_block(5) == bytes(BLOCK_SIZE)


def test_trim_range(device, rng):
    for i in range(4):
        device.write_block(i, make_block(rng))
    device.trim(1, 2)
    assert device.read_block(0) != bytes(BLOCK_SIZE)
    assert device.read_block(1) == bytes(BLOCK_SIZE)
    assert device.read_block(2) == bytes(BLOCK_SIZE)
    assert device.read_block(3) != bytes(BLOCK_SIZE)


def test_misaligned_write_rejected(device):
    with pytest.raises(AlignmentError):
        device.write_block(0, b"short")
    with pytest.raises(AlignmentError):
        device.write_blocks(0, b"x" * (BLOCK_SIZE + 1))


def test_out_of_range_io_rejected(device):
    with pytest.raises(OutOfRangeError):
        device.read_block(device.num_blocks)
    with pytest.raises(OutOfRangeError):
        device.write_block(-1, bytes(BLOCK_SIZE))
    with pytest.raises(OutOfRangeError):
        device.write_blocks(device.num_blocks - 1, bytes(2 * BLOCK_SIZE))


def test_logical_write_accounting(device, rng):
    device.write_block(0, make_block(rng))
    device.write_blocks(1, rng.random_bytes(2 * BLOCK_SIZE))
    assert device.stats.logical_bytes_written == 3 * BLOCK_SIZE
    assert device.stats.write_ios == 2


def test_physical_write_accounting_compresses(device, rng):
    """A half-zero block should cost roughly half its logical size physically."""
    device.write_block(0, make_block(rng, nonzero_bytes=BLOCK_SIZE // 2))
    physical = device.stats.physical_bytes_written
    assert 0.3 * BLOCK_SIZE < physical < 0.7 * BLOCK_SIZE


def test_all_zero_block_nearly_free(device):
    device.write_block(0, bytes(BLOCK_SIZE))
    assert device.stats.physical_bytes_written < 64


def test_physical_usage_tracks_live_data(device, rng):
    device.write_block(0, make_block(rng))
    used_after_write = device.physical_bytes_used
    assert used_after_write > 0.9 * BLOCK_SIZE
    device.trim(0)
    assert device.physical_bytes_used == 0


def test_overwrite_does_not_leak_usage(device, rng):
    device.write_block(0, make_block(rng))
    first = device.physical_bytes_used
    device.write_block(0, make_block(rng))
    assert device.physical_bytes_used == pytest.approx(first, rel=0.1)


def test_logical_usage_counts_mapped_lbas(device, rng):
    device.write_block(0, make_block(rng))
    device.write_block(9, make_block(rng))
    assert device.logical_bytes_used == 2 * BLOCK_SIZE
    device.trim(9)
    assert device.logical_bytes_used == BLOCK_SIZE


def test_read_accounting_physical_vs_logical(device, rng):
    device.write_block(0, make_block(rng, nonzero_bytes=256))
    device.read_block(0)  # live, small extent
    device.read_block(1)  # never written: free physically
    assert device.stats.logical_bytes_read == 2 * BLOCK_SIZE
    assert device.stats.physical_bytes_read < 1024


def test_thin_provisioning_capacity_enforced(rng):
    device = CompressedBlockDevice(
        num_blocks=64, physical_capacity=BLOCK_SIZE + BLOCK_SIZE // 2
    )
    device.write_block(0, make_block(rng))
    with pytest.raises(CapacityError):
        device.write_block(1, make_block(rng))


def test_thin_provisioning_sparse_data_fits(rng):
    """Many mostly-zero logical blocks fit into little physical space."""
    device = CompressedBlockDevice(num_blocks=64, physical_capacity=2 * BLOCK_SIZE)
    for lba in range(32):
        device.write_block(lba, make_block(rng, nonzero_bytes=64))
    assert device.logical_bytes_used == 32 * BLOCK_SIZE
    assert device.physical_bytes_used < 2 * BLOCK_SIZE


def test_plain_ssd_physical_equals_logical(plain_ssd, rng):
    plain_ssd.write_block(0, bytes(BLOCK_SIZE))  # even zeros cost full size
    assert plain_ssd.stats.physical_bytes_written == BLOCK_SIZE


def test_crash_discards_unflushed_writes(device, rng):
    block = make_block(rng)
    device.write_block(0, block)
    device.flush()
    device.write_block(0, make_block(rng))
    lost = device.simulate_crash()
    assert lost == [0]
    assert device.read_block(0) == block


def test_crash_preserves_flushed_writes(device, rng):
    block = make_block(rng)
    device.write_block(4, block)
    device.flush()
    device.simulate_crash()
    assert device.read_block(4) == block


def test_crash_partial_survival_models_torn_multiblock_write(device, rng):
    """A two-block write where only the first block survives the crash."""
    data = rng.random_bytes(2 * BLOCK_SIZE)
    device.write_blocks(0, data)
    device.simulate_crash(survives=lambda lba: lba == 0)
    assert device.read_block(0) == data[:BLOCK_SIZE]
    assert device.read_block(1) == bytes(BLOCK_SIZE)


def test_crash_unflushed_trim_can_be_lost(device, rng):
    block = make_block(rng)
    device.write_block(2, block)
    device.flush()
    device.trim(2)
    device.simulate_crash()  # trim never became durable
    assert device.read_block(2) == block


def test_flush_persists_trim(device, rng):
    device.write_block(2, make_block(rng))
    device.trim(2)
    device.flush()
    device.simulate_crash()
    assert device.read_block(2) == bytes(BLOCK_SIZE)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_device_matches_reference_model(data):
    """Random write/trim/flush sequences agree with a dict reference model."""
    rng = DeterministicRng(data.draw(st.integers(0, 2**32)))
    device = CompressedBlockDevice(num_blocks=16, compressor=ZlibCompressor(1))
    reference: dict = {}
    for _ in range(data.draw(st.integers(1, 60))):
        action = data.draw(st.sampled_from(["write", "trim", "flush", "read"]))
        lba = data.draw(st.integers(0, 15))
        if action == "write":
            block = make_block(rng, nonzero_bytes=data.draw(st.integers(0, BLOCK_SIZE)))
            device.write_block(lba, block)
            reference[lba] = block
        elif action == "trim":
            device.trim(lba)
            reference.pop(lba, None)
        elif action == "flush":
            device.flush()
        else:
            assert device.read_block(lba) == reference.get(lba, bytes(BLOCK_SIZE))
    for lba in range(16):
        assert device.read_block(lba) == reference.get(lba, bytes(BLOCK_SIZE))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32), n_ops=st.integers(1, 40))
def test_property_physical_writes_monotone(seed, n_ops):
    rng = DeterministicRng(seed)
    device = CompressedBlockDevice(num_blocks=32)
    last = 0
    for i in range(n_ops):
        device.write_block(i % 32, make_block(rng, nonzero_bytes=rng.randrange(BLOCK_SIZE)))
        now = device.stats.physical_bytes_written
        assert now >= last
        last = now


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_property_live_bytes_never_exceed_physical_writes(seed):
    rng = DeterministicRng(seed)
    device = CompressedBlockDevice(num_blocks=32)
    for i in range(40):
        if rng.random() < 0.7:
            lba = rng.randrange(32)
            block = make_block(rng, nonzero_bytes=rng.randrange(BLOCK_SIZE))
            device.write_block(lba, block)
        else:
            device.trim(rng.randrange(32))
        assert device.physical_bytes_used <= device.stats.physical_bytes_written


# --------------------------------------------------------------- IOPS semantics


def test_multi_block_write_is_one_io(device, rng):
    """One write command = one I/O, however many blocks it spans."""
    device.write_blocks(0, rng.random_bytes(4 * BLOCK_SIZE))
    assert device.stats.write_ios == 1
    assert device.stats.blocks_written == 4


def test_multi_block_read_is_one_io(device, rng):
    device.write_blocks(0, rng.random_bytes(3 * BLOCK_SIZE))
    snap = device.stats.snapshot()
    device.read_blocks(0, 3)
    delta = device.stats.delta(snap)
    assert delta.read_ios == 1
    assert delta.blocks_read == 3


def test_single_block_io_counts_one_block(device, rng):
    device.write_block(2, make_block(rng))
    device.read_block(2)
    assert device.stats.write_ios == 1
    assert device.stats.blocks_written == 1
    assert device.stats.read_ios == 1
    assert device.stats.blocks_read == 1


def test_block_counters_accumulate_across_commands(device, rng):
    device.write_blocks(0, rng.random_bytes(2 * BLOCK_SIZE))
    device.write_block(8, make_block(rng))
    device.read_blocks(0, 2)
    device.read_block(8)
    assert device.stats.write_ios == 2
    assert device.stats.blocks_written == 3
    assert device.stats.read_ios == 2
    assert device.stats.blocks_read == 3
