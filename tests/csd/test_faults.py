"""Unit tests for the programmable fault-injection layer."""

import random

import pytest

from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.csd.faults import (
    RETRY_ATTEMPTS,
    FaultInjectingDevice,
    FaultPlan,
    ScriptedFault,
    read_block_retrying,
    read_blocks_retrying,
    write_block_retrying,
    write_blocks_retrying,
)
from repro.errors import (
    FaultInjectionError,
    SimulatedCrashError,
    TornWriteError,
    TransientIOError,
)
from repro.metrics import FaultStats


def block(seed: int, tag: int = 0) -> bytes:
    rng = random.Random((seed << 8) | tag)
    return bytes(rng.getrandbits(8) for _ in range(BLOCK_SIZE))


def wrapped(plan=None, num_blocks=256, record_ops=False):
    inner = CompressedBlockDevice(num_blocks=num_blocks)
    return FaultInjectingDevice(inner, plan, record_ops=record_ops)


# ----------------------------------------------------------- transparency


def test_fault_free_plan_is_transparent():
    """An empty plan must behave exactly like the bare device."""
    device = wrapped()
    data = block(1)
    device.write_block(7, data)
    device.write_blocks(10, block(2) + block(3))
    device.flush()
    assert device.read_block(7) == data
    assert device.read_blocks(10, 2) == block(2) + block(3)
    device.trim(7)
    device.flush()
    assert device.read_block(7) == bytes(BLOCK_SIZE)
    assert device.injected.total == 0
    # Delegation: untouched attributes come from the wrapped device.
    assert device.num_blocks == 256
    assert device.physical_bytes_used == device.inner.physical_bytes_used


def test_fault_free_wrapper_matches_bare_device_byte_for_byte():
    """Differential: same op stream through wrapper and bare device."""
    bare = CompressedBlockDevice(num_blocks=64)
    faulty = wrapped(num_blocks=64)
    rng = random.Random(99)
    for _ in range(300):
        action = rng.randrange(5)
        lba = rng.randrange(60)
        if action == 0:
            data = block(rng.randrange(1 << 16))
            bare.write_block(lba, data)
            faulty.write_block(lba, data)
        elif action == 1:
            data = block(rng.randrange(1 << 16)) + block(rng.randrange(1 << 16))
            bare.write_blocks(lba, data)
            faulty.write_blocks(lba, data)
        elif action == 2:
            bare.trim(lba)
            faulty.trim(lba)
        elif action == 3:
            bare.flush()
            faulty.flush()
        else:
            assert bare.read_block(lba) == faulty.read_block(lba)
    assert bare.physical_bytes_used == faulty.physical_bytes_used
    assert faulty.injected.total == 0


# ------------------------------------------------------------- validation


@pytest.mark.parametrize("bad_plan", [
    FaultPlan(transient_read_rate=1.5),
    FaultPlan(dropped_trim_rate=-0.1),
    FaultPlan(max_faults=-1),
    FaultPlan(scripted=(ScriptedFault(0, "nonsense"),)),
    FaultPlan(scripted=(ScriptedFault(-1, "crash"),)),
    FaultPlan(scripted=(ScriptedFault(0, "corrupt"),)),  # needs an lba
    FaultPlan(scripted=(ScriptedFault(0, "crash", mode="sideways"),)),
])
def test_plan_validation_rejects(bad_plan):
    with pytest.raises(FaultInjectionError):
        FaultInjectingDevice(CompressedBlockDevice(num_blocks=8), bad_plan)


# ------------------------------------------------- transient faults + retry


def test_transient_read_fault_heals_on_retry():
    device = wrapped(FaultPlan(scripted=(ScriptedFault(2, "transient-read"),)))
    device.write_block(3, block(4))
    device.flush()
    with pytest.raises(TransientIOError):
        device.read_block(3)  # op 2 (write, flush, read): the scripted fault
    assert device.read_block(3) == block(4)
    stats = FaultStats()
    device2 = wrapped(FaultPlan(scripted=(ScriptedFault(1, "transient-read"),)))
    device2.write_block(3, block(4))
    assert read_block_retrying(device2, 3, stats) == block(4)
    assert stats.transient_read_retries == 1


def test_transient_write_fault_applies_nothing_then_heals():
    stats = FaultStats()
    device = wrapped(FaultPlan(scripted=(ScriptedFault(0, "transient-write"),)))
    write_block_retrying(device, 5, block(7), stats)
    device.flush()
    assert device.read_block(5) == block(7)
    assert stats.transient_write_retries == 1
    assert device.injected.transient_writes == 1


def test_retry_budget_exhaustion_reraises():
    always = FaultPlan(transient_read_rate=1.0)
    device = wrapped(always)
    with pytest.raises(TransientIOError):
        read_block_retrying(device, 0, attempts=RETRY_ATTEMPTS)
    assert device.injected.transient_reads == RETRY_ATTEMPTS


def test_torn_write_applies_strict_prefix_then_retry_completes():
    stats = FaultStats()
    device = wrapped(FaultPlan(seed=5, scripted=(ScriptedFault(0, "torn-write"),)))
    payload = block(1) + block(2) + block(3)
    write_blocks_retrying(device, 20, payload, stats)
    device.flush()
    assert device.read_blocks(20, 3) == payload  # full-request retry healed it
    assert stats.torn_write_retries == 1
    assert device.injected.torn_writes == 1


def test_torn_write_without_retry_leaves_a_prefix():
    device = wrapped(FaultPlan(seed=5, scripted=(ScriptedFault(0, "torn-write"),)))
    payload = block(1) + block(2) + block(3)
    with pytest.raises(TornWriteError):
        device.write_blocks(20, payload)
    device.flush()
    landed = device.read_blocks(20, 3)
    applied = 0
    for i in range(3):
        chunk = landed[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
        if chunk == payload[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]:
            applied += 1
        else:
            assert chunk == bytes(BLOCK_SIZE)  # nothing past the tear point
            break
    assert applied < 3  # strictly torn


def test_probabilistic_tear_never_hits_single_block_writes():
    device = wrapped(FaultPlan(seed=1, torn_write_rate=1.0))
    device.write_blocks(0, block(9))  # one block: must not tear
    assert device.injected.torn_writes == 0


# ----------------------------------------------------- corruption semantics


def test_latent_corruption_persists_until_rewrite_heals():
    device = wrapped()
    data = block(11)
    device.write_block(40, data)
    device.flush()
    device.corrupt_stable(40)
    first = device.read_block(40)
    assert first != data
    assert device.read_block(40) == first  # persistent, deterministic
    assert device.corrupted_lbas == [40]
    device.write_block(40, data)  # the rewrite heals the sector
    assert device.corrupted_lbas == []
    assert device.read_block(40) == data


def test_latent_corruption_survives_crash_and_heals_by_trim():
    device = wrapped()
    device.write_block(8, block(2))
    device.flush()
    device.corrupt_stable(8)
    device.simulate_crash()
    assert device.corrupted_lbas == [8]  # bit rot ignores power cycles
    device.trim(8)
    assert device.corrupted_lbas == []


def test_read_corruption_is_transient():
    device = wrapped(FaultPlan(scripted=(ScriptedFault(2, "read-corruption"),)))
    data = block(3)
    device.write_block(2, data)
    device.flush()
    assert device.read_block(2) != data  # this read is corrupted...
    assert device.read_block(2) == data  # ...the media was always fine
    assert device.injected.read_corruptions == 1


def test_corrupt_stable_bounds_checked():
    device = wrapped(num_blocks=16)
    with pytest.raises(FaultInjectionError):
        device.corrupt_stable(15, count=2)


# ------------------------------------------------------- silent misbehaviour


def test_dropped_trim_leaves_data_in_place():
    device = wrapped(FaultPlan(scripted=(ScriptedFault(1, "drop-trim"),)))
    data = block(6)
    device.write_block(9, data)
    device.trim(9)  # silently dropped
    device.flush()
    assert device.read_block(9) == data
    assert device.injected.dropped_trims == 1


def test_misdirected_write_lands_next_door():
    device = wrapped(FaultPlan(scripted=(ScriptedFault(0, "misdirect"),)))
    data = block(8)
    device.write_block(30, data)
    device.flush()
    assert device.read_block(31) == data
    assert device.read_block(30) == bytes(BLOCK_SIZE)
    assert device.injected.misdirected_writes == 1


# ------------------------------------------------------------ crash points


def test_scripted_crash_drop_loses_pending_writes():
    device = wrapped(FaultPlan(scripted=(ScriptedFault(3, "crash", mode="drop"),)))
    device.write_block(1, block(1))
    device.flush()
    device.write_block(2, block(2))  # pending when the crash fires
    with pytest.raises(SimulatedCrashError):
        device.write_block(3, block(3))  # op 3: crash fires before applying
    assert device.read_block(1) == block(1)
    assert device.read_block(2) == bytes(BLOCK_SIZE)
    assert device.read_block(3) == bytes(BLOCK_SIZE)
    assert device.injected.crashes == 1


def test_scripted_crash_keep_retains_pending_writes():
    device = wrapped(FaultPlan(scripted=(ScriptedFault(1, "crash", mode="keep"),)))
    device.write_block(1, block(1))
    with pytest.raises(SimulatedCrashError):
        device.write_block(2, block(2))  # crash fires before applying this
    assert device.read_block(1) == block(1)


def test_crash_points_fire_on_trim_and_flush_too():
    for setup in ("trim", "flush"):
        device = wrapped(FaultPlan(scripted=(ScriptedFault(1, "crash"),)))
        device.write_block(1, block(1))
        with pytest.raises(SimulatedCrashError):
            if setup == "trim":
                device.trim(1)
            else:
                device.flush()


# ------------------------------------------------- determinism + recording


def test_same_seed_same_faults():
    def run(seed):
        device = wrapped(FaultPlan(seed=seed, transient_read_rate=0.3,
                                   read_corruption_rate=0.2))
        device.write_block(0, block(0))
        device.flush()
        outcomes = []
        for _ in range(50):
            try:
                device.read_block(0)
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("fault")
        return outcomes, device.injected.as_dict()

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_max_faults_caps_probabilistic_injection():
    device = wrapped(FaultPlan(seed=0, transient_read_rate=1.0, max_faults=2))
    device.write_block(0, block(0))
    device.flush()
    for _ in range(2):
        with pytest.raises(TransientIOError):
            device.read_block(0)
    assert device.read_block(0) == block(0)  # budget spent: faults stop
    assert device.injected.transient_reads == 2


def test_op_log_records_the_mutation_stream():
    device = wrapped(record_ops=True)
    device.write_block(3, block(1))
    device.read_block(3)
    device.trim(3)
    device.flush()
    assert device.op_log == [
        ("write", 3, 1), ("read", 3, 1), ("trim", 3, 1), ("flush", -1, 0),
    ]


def test_zero_rate_plans_consume_no_rng():
    """Reads under an all-zero-rate plan leave the plan RNG untouched, so
    scripted crash reruns stay deterministic whatever the read count."""
    device = wrapped(FaultPlan(seed=7))
    device.write_block(0, block(0))
    device.flush()
    state = device._rng.getstate()
    for _ in range(25):
        device.read_block(0)
        device.read_blocks(0, 1)
    assert device._rng.getstate() == state


def test_read_blocks_retrying_and_multi_corruption():
    stats = FaultStats()
    device = wrapped(FaultPlan(scripted=(ScriptedFault(2, "transient-read"),)))
    payload = block(1) + block(2)
    device.write_blocks(4, payload)
    device.flush()
    assert read_blocks_retrying(device, 4, 2, stats) == payload
    assert stats.transient_read_retries == 1


# ---------------------------------------------------------------- repeat


def test_scripted_repeat_fires_at_consecutive_op_indices():
    fault = ScriptedFault(2, "transient-read", repeat=3)
    device = wrapped(FaultPlan(scripted=(fault,)))
    device.write_block(0, block(0))  # op 0
    device.flush()                   # op 1
    for _ in range(3):               # ops 2..4 all fault
        with pytest.raises(TransientIOError):
            device.read_block(0)
    assert device.read_block(0) == block(0)  # op 5: past the repeat span


def test_scripted_repeat_outlasts_the_bounded_retry_helper():
    """A repeat longer than RETRY_ATTEMPTS forces the fault past the
    engine-level retry helpers, to whoever sits above them."""
    stats = FaultStats()
    fault = ScriptedFault(1, "transient-read", repeat=RETRY_ATTEMPTS + 1)
    device = wrapped(FaultPlan(scripted=(fault,)))
    device.write_block(0, block(0))  # op 0
    with pytest.raises(TransientIOError):
        read_block_retrying(device, 0, stats)
    assert stats.transient_read_retries == RETRY_ATTEMPTS
    # One more span-exhausting read succeeds (indices past the span).
    assert read_block_retrying(device, 0, stats) == block(0)


def test_scripted_repeat_validation():
    with pytest.raises(FaultInjectionError):
        FaultPlan(scripted=(ScriptedFault(0, "transient-read", repeat=0),)
                  ).validate()
