"""Unit tests for the file-backed device variant."""

import pytest

from repro.csd.device import BLOCK_SIZE
from repro.csd.filedevice import FileBackedBlockDevice
from repro.errors import OutOfRangeError
from repro.sim.rng import DeterministicRng


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "device.img")


def block(rng, nonzero=BLOCK_SIZE):
    return rng.random_bytes(nonzero) + bytes(BLOCK_SIZE - nonzero)


def test_roundtrip(path, rng):
    with FileBackedBlockDevice(path, 64) as device:
        data = block(rng)
        device.write_block(3, data)
        assert device.read_block(3) == data
        assert device.read_block(4) == bytes(BLOCK_SIZE)


def test_bounds_checked(path):
    with FileBackedBlockDevice(path, 8) as device:
        with pytest.raises(OutOfRangeError):
            device.read_block(8)


def test_compression_accounting(path, rng):
    with FileBackedBlockDevice(path, 64) as device:
        device.write_block(0, block(rng, nonzero=512))
        assert device.stats.physical_bytes_written < BLOCK_SIZE / 2
        assert device.logical_bytes_used == BLOCK_SIZE


def test_trim_reads_zero_after_flush(path, rng):
    with FileBackedBlockDevice(path, 64) as device:
        device.write_block(5, block(rng))
        device.flush()
        device.trim(5)
        device.flush()
        assert device.read_block(5) == bytes(BLOCK_SIZE)
        assert device.physical_bytes_used == 0


def test_crash_drops_unflushed(path, rng):
    with FileBackedBlockDevice(path, 64) as device:
        first = block(rng)
        device.write_block(0, first)
        device.flush()
        device.write_block(0, block(rng))
        lost = device.simulate_crash()
        assert lost == [0]
        assert device.read_block(0) == first


def test_crash_partial_survival(path, rng):
    with FileBackedBlockDevice(path, 64) as device:
        data = rng.random_bytes(2 * BLOCK_SIZE)
        device.write_blocks(0, data)
        device.simulate_crash(survives=lambda lba: lba == 1)
        assert device.read_block(0) == bytes(BLOCK_SIZE)
        assert device.read_block(1) == data[BLOCK_SIZE:]


def test_reopen_preserves_contents(path, rng):
    data = block(rng)
    with FileBackedBlockDevice(path, 64) as device:
        device.write_block(7, data)
        device.flush()
    with FileBackedBlockDevice(path, 64) as reopened:
        assert reopened.read_block(7) == data
        # Physical usage rebuilt from the file; history counters reset.
        assert reopened.physical_bytes_used > 0.9 * BLOCK_SIZE
        assert reopened.stats.physical_bytes_written == 0


def test_reopen_runs_an_engine(path, rng):
    """A B-tree survives a full process 'restart' on the file device."""
    from repro.btree.engine import BTreeConfig, BTreeEngine

    config = BTreeConfig(cache_bytes=1 << 17, max_pages=512, log_blocks=64)
    with FileBackedBlockDevice(path, 20_000) as device:
        engine = BTreeEngine(device, config)
        for i in range(500):
            engine.put(i.to_bytes(8, "big"), bytes([i % 256]) * 32)
            engine.commit()
        engine.close()
    with FileBackedBlockDevice(path, 20_000) as device:
        reopened = BTreeEngine.open(device, config)
        assert reopened.get((77).to_bytes(8, "big")) == bytes([77]) * 32
        assert sum(1 for _ in reopened.items()) == 500


def test_matches_in_memory_device_semantics(path, rng):
    """Differential check against the dict-backed device."""
    from repro.csd.device import CompressedBlockDevice

    memory = CompressedBlockDevice(num_blocks=32)
    with FileBackedBlockDevice(path, 32) as disk:
        actions = DeterministicRng(9)
        for _ in range(120):
            action = actions.randrange(4)
            lba = actions.randrange(32)
            if action == 0:
                data = block(actions, nonzero=actions.randrange(BLOCK_SIZE))
                memory.write_block(lba, data)
                disk.write_block(lba, data)
            elif action == 1:
                memory.trim(lba)
                disk.trim(lba)
            elif action == 2:
                memory.flush()
                disk.flush()
            else:
                assert memory.read_block(lba) == disk.read_block(lba)
        for lba in range(32):
            assert memory.read_block(lba) == disk.read_block(lba)
        assert memory.physical_bytes_used == disk.physical_bytes_used


def test_reopen_after_crash_recovers_committed_state(path, rng):
    """Crash mid-commit, close, reopen in a 'new process': recovery runs.

    The first process crashes with a torn in-flight commit, then exits (the
    context-manager close must not re-persist the writes the crash dropped).
    The second process reopens the same file, rebuilds the FTL, and the
    engine's crash recovery restores exactly the committed history.
    """
    from repro.btree.engine import BTreeConfig, BTreeEngine

    config = BTreeConfig(cache_bytes=1 << 16, max_pages=512, log_blocks=64,
                         log_flush_policy="commit")
    committed = {}
    with FileBackedBlockDevice(path, 20_000) as device:
        engine = BTreeEngine(device, config)
        for i in range(300):
            k, v = i.to_bytes(8, "big"), bytes([i % 256]) * 48
            engine.put(k, v)
            committed[k] = v
            engine.commit()
        # Mid-commit crash: more puts in flight, a seeded subset of the
        # pending blocks lands (torn), the rest are lost.
        for i in range(300, 310):
            engine.put(i.to_bytes(8, "big"), b"uncommitted")
        device.simulate_crash(keep_torn=77)
    with FileBackedBlockDevice(path, 20_000) as device:
        assert device.physical_bytes_used > 0  # FTL rebuilt from the file
        recovered = BTreeEngine.open(device, config)
        assert dict(recovered.items()) == committed
        recovered.tree.check_invariants()
        # Recovered store stays writable across yet another restart.
        recovered.put(b"\xff" * 8, b"post-recovery")
        recovered.commit()
        recovered.close()
    with FileBackedBlockDevice(path, 20_000) as device:
        final = BTreeEngine.open(device, config)
        assert final.get(b"\xff" * 8) == b"post-recovery"


def test_close_after_crash_does_not_repersist_dropped_writes(path, rng):
    """The close() flush guard: crashed-away writes stay gone on reopen."""
    keep = block(rng)
    with FileBackedBlockDevice(path, 32) as device:
        device.write_block(3, keep)
        device.flush()
        device.write_block(3, block(rng))  # overwrite, then lost in the crash
        device.write_block(4, block(rng))  # never durable
        lost = device.simulate_crash()
        assert sorted(lost) == [3, 4]
    with FileBackedBlockDevice(path, 32) as device:
        assert device.read_block(3) == keep
        assert device.read_block(4) == bytes(BLOCK_SIZE)


def test_writes_after_crash_rearm_close_flush(path, rng):
    """New writes after a crash restore normal close-flush durability."""
    data = block(rng)
    with FileBackedBlockDevice(path, 32) as device:
        device.write_block(1, block(rng))
        device.simulate_crash()
        device.write_block(2, data)  # post-crash write: durable via close()
    with FileBackedBlockDevice(path, 32) as device:
        assert device.read_block(1) == bytes(BLOCK_SIZE)
        assert device.read_block(2) == data


def test_keep_torn_applies_seeded_subset(path, rng):
    """simulate_crash(keep_torn=s) keeps a seeded random subset of writes."""
    blocks = {lba: block(rng) for lba in range(40)}
    with FileBackedBlockDevice(path, 64) as device:
        for lba, data in blocks.items():
            device.write_block(lba, data)
        lost = device.simulate_crash(keep_torn=123)
        kept = sorted(set(blocks) - set(lost))
        assert 0 < len(kept) < len(blocks)  # strict subset: genuinely torn
        for lba in kept:
            assert device.read_block(lba) == blocks[lba]
        for lba in lost:
            assert device.read_block(lba) == bytes(BLOCK_SIZE)
    # The survival pattern is a pure function of the seed.
    with FileBackedBlockDevice(path + ".b", 64) as device:
        for lba, data in blocks.items():
            device.write_block(lba, data)
        assert device.simulate_crash(keep_torn=123) == lost


def test_keep_torn_and_survives_are_exclusive(path):
    """Passing both crash selectors is a usage error."""
    from repro.errors import FaultInjectionError

    with FileBackedBlockDevice(path, 32) as device:
        device.write_block(0, bytes(BLOCK_SIZE))
        with pytest.raises(FaultInjectionError):
            device.simulate_crash(survives=lambda lba: True, keep_torn=1)
        device.simulate_crash()  # leave it cleanly crashed for close()
