"""Unit tests for the flash translation layer and GC model."""

import pytest

from repro.csd.ftl import MAPPING_ENTRY_COST, FlashTranslationLayer, GreedyGcModel
from repro.csd.stats import DeviceStats
from repro.errors import CapacityError


def make_ftl(capacity=1 << 20, gc=None):
    return FlashTranslationLayer(capacity, DeviceStats(), gc)


def test_initial_state_empty():
    ftl = make_ftl()
    assert ftl.live_bytes == 0
    assert ftl.mapped_lbas == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        FlashTranslationLayer(0, DeviceStats())


def test_record_write_tracks_live_bytes():
    ftl = make_ftl()
    ftl.record_write(0, 100)
    ftl.record_write(1, 200)
    assert ftl.live_bytes == 300
    assert ftl.mapped_lbas == 2


def test_overwrite_replaces_extent():
    ftl = make_ftl()
    ftl.record_write(0, 100)
    ftl.record_write(0, 50)
    assert ftl.live_bytes == 50
    assert ftl.mapped_lbas == 1


def test_trim_releases_space():
    ftl = make_ftl()
    ftl.record_write(0, 100)
    ftl.record_trim(0)
    assert ftl.live_bytes == 0
    assert ftl.extent_size(0) == 0


def test_trim_unmapped_lba_is_noop():
    ftl = make_ftl()
    ftl.record_trim(7)
    assert ftl.live_bytes == 0


def test_extent_size_lookup():
    ftl = make_ftl()
    ftl.record_write(3, 77)
    assert ftl.extent_size(3) == 77
    assert ftl.extent_size(4) == 0


def test_physical_write_counter_includes_metadata():
    stats = DeviceStats()
    ftl = FlashTranslationLayer(1 << 20, stats)
    charged = ftl.record_write(0, 100)
    assert charged == 100 + MAPPING_ENTRY_COST
    assert stats.physical_bytes_written == charged


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        make_ftl().record_write(0, -1)


def test_capacity_exceeded_raises():
    ftl = make_ftl(capacity=150)
    ftl.record_write(0, 100)
    with pytest.raises(CapacityError):
        ftl.record_write(1, 100)


def test_capacity_freed_by_trim_is_reusable():
    ftl = make_ftl(capacity=150)
    ftl.record_write(0, 100)
    ftl.record_trim(0)
    ftl.record_write(1, 100)  # must not raise
    assert ftl.live_bytes == 100


def test_gc_model_idle_below_half_utilisation():
    gc = GreedyGcModel()
    assert gc.charge(written=1000, live_bytes=100, capacity=1000) == 0


def test_gc_model_charges_when_full():
    gc = GreedyGcModel()
    charge = gc.charge(written=1000, live_bytes=900, capacity=1000)
    assert charge > 1000  # u/(1-u) = 9x relocation at 90% utilisation


def test_gc_model_disabled():
    gc = GreedyGcModel(enabled=False)
    assert gc.charge(1000, 990, 1000) == 0


def test_gc_bytes_accumulate_in_stats():
    stats = DeviceStats()
    ftl = FlashTranslationLayer(1000, stats, GreedyGcModel())
    ftl.record_write(0, 800)
    ftl.record_write(1, 100)
    assert stats.gc_bytes_written > 0
