"""Unit tests for the device latency/bandwidth model."""

import pytest

from repro.csd.device import BLOCK_SIZE
from repro.csd.latency import DeviceLatencyModel, HostCostModel
from repro.csd.stats import DeviceStats


def test_no_traffic_no_time():
    model = DeviceLatencyModel()
    assert model.busy_time(DeviceStats()) == 0.0


def test_write_time_scales_with_physical_bytes():
    """Better compression (smaller physical volume) must shrink busy time once
    the flash back end is the bottleneck."""
    model = DeviceLatencyModel()
    heavy = DeviceStats(
        logical_bytes_written=1 << 30, physical_bytes_written=1 << 30, write_ios=1
    )
    light = DeviceStats(
        logical_bytes_written=1 << 30, physical_bytes_written=1 << 28, write_ios=1
    )
    assert model.write_busy_time(light) < model.write_busy_time(heavy)


def test_write_time_iops_bound():
    model = DeviceLatencyModel()
    stats = DeviceStats(
        write_ios=int(model.sustained_write_iops), logical_bytes_written=BLOCK_SIZE
    )
    assert model.write_busy_time(stats) == pytest.approx(1.0, rel=0.05)


def test_write_time_interface_bound():
    """Incompressible data at full bandwidth is interface/flash limited."""
    model = DeviceLatencyModel()
    stats = DeviceStats(
        logical_bytes_written=int(3.2e9), physical_bytes_written=int(3.2e9), write_ios=1
    )
    busy = model.write_busy_time(stats)
    assert busy >= 1.0  # cannot beat the PCIe link


def test_gc_traffic_slows_writes():
    model = DeviceLatencyModel()
    base = DeviceStats(logical_bytes_written=1 << 30, physical_bytes_written=1 << 30)
    with_gc = DeviceStats(
        logical_bytes_written=1 << 30,
        physical_bytes_written=1 << 30,
        gc_bytes_written=1 << 30,
    )
    assert model.write_busy_time(with_gc) > model.write_busy_time(base)


def test_read_time_cheap_for_trimmed_data():
    """Reading logically large but physically tiny data is interface-bound."""
    model = DeviceLatencyModel()
    sparse = DeviceStats(logical_bytes_read=1 << 30, physical_bytes_read=1 << 20, read_ios=1)
    dense = DeviceStats(logical_bytes_read=1 << 30, physical_bytes_read=1 << 30, read_ios=1)
    assert model.read_busy_time(sparse) <= model.read_busy_time(dense)


def test_flush_adds_latency():
    model = DeviceLatencyModel()
    stats = DeviceStats(flush_ios=100)
    expected = 100 * model.flush_latency / model.flush_parallelism
    assert model.write_busy_time(stats) == pytest.approx(expected)


def test_read_request_latency_includes_flash_access():
    model = DeviceLatencyModel()
    latency = model.read_request_latency(8192)
    assert latency > model.flash_read_latency


def test_read_request_latency_grows_with_size():
    model = DeviceLatencyModel()
    assert model.read_request_latency(64 * BLOCK_SIZE) > model.read_request_latency(BLOCK_SIZE)


def test_busy_time_sums_read_and_write():
    model = DeviceLatencyModel()
    stats = DeviceStats(
        logical_bytes_written=1 << 20,
        physical_bytes_written=1 << 20,
        logical_bytes_read=1 << 20,
        physical_bytes_read=1 << 20,
    )
    assert model.busy_time(stats) == pytest.approx(
        model.write_busy_time(stats) + model.read_busy_time(stats)
    )


def test_host_cost_model_defaults():
    host = HostCostModel()
    assert host.op_base > 0
    assert host.cpu_cores == 24


def test_host_costs_all_positive():
    host = HostCostModel()
    for cost in (host.per_record_scan, host.page_reconstruct_per_kb,
                 host.bloom_probe, host.memtable_probe, host.log_append):
        assert cost > 0


def test_sustained_iops_below_fresh_drive_spec():
    """Steady-state write throughput must be bound by the sustained figure,
    not the fresh-drive spec sheet number."""
    model = DeviceLatencyModel()
    assert model.sustained_write_iops < model.write_iops
    many_small = DeviceStats(write_ios=100_000, logical_bytes_written=100_000)
    assert model.write_busy_time(many_small) == pytest.approx(
        100_000 / model.sustained_write_iops)


def test_write_busy_time_takes_slowest_limit():
    """Interface, IOPS and flash limits race; the max rules (plus fsync)."""
    model = DeviceLatencyModel()
    stats = DeviceStats(
        logical_bytes_written=1 << 30,
        physical_bytes_written=1 << 26,
        write_ios=10,
        flush_ios=8,
    )
    interface = stats.logical_bytes_written / model.interface_bandwidth
    fsync = 8 * model.flush_latency / model.flush_parallelism
    assert model.write_busy_time(stats) == pytest.approx(interface + fsync)


def test_read_busy_time_zero_for_no_reads():
    model = DeviceLatencyModel()
    write_only = DeviceStats(logical_bytes_written=1 << 20, write_ios=5)
    assert model.read_busy_time(write_only) == 0.0
    assert model.busy_time(write_only) == model.write_busy_time(write_only)


def test_read_request_latency_minimum_one_block():
    """Even a tiny read pays one flash access plus one block's decompression."""
    model = DeviceLatencyModel()
    tiny = model.read_request_latency(1)
    assert tiny >= model.flash_read_latency + model.compression_latency
    assert model.read_request_latency(0) == pytest.approx(
        model.flash_read_latency + model.compression_latency)


def test_busy_time_monotone_in_traffic():
    model = DeviceLatencyModel()
    small = DeviceStats(logical_bytes_written=1 << 20,
                        physical_bytes_written=1 << 20, write_ios=10)
    bigger = DeviceStats(logical_bytes_written=1 << 24,
                         physical_bytes_written=1 << 24, write_ios=1000)
    assert model.busy_time(bigger) > model.busy_time(small)
