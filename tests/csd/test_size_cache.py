"""Tests for the content-addressed compressed-size LRU cache."""

from __future__ import annotations

import pytest

from repro.csd.compression import (
    SIZE_CACHE_CAPACITY,
    Compressor,
    SizeCachingCompressor,
    ZlibCompressor,
)


class CountingCompressor(Compressor):
    """Deterministic stub that counts how often it is actually invoked."""

    def __init__(self) -> None:
        self.calls = 0

    def compressed_size(self, block) -> int:
        self.calls += 1
        return len(bytes(block)) // 2 + 1


def block_of(tag: int, size: int = 4096) -> bytes:
    return tag.to_bytes(8, "little") + bytes(size - 8)


class TestCacheHits:
    def test_repeated_content_hits_once_compressed(self):
        inner = CountingCompressor()
        cache = SizeCachingCompressor(inner)
        blk = block_of(1)
        first = cache.compressed_size(blk)
        for _ in range(9):
            assert cache.compressed_size(blk) == first
        assert inner.calls == 1
        assert cache.hits == 9
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.9)

    def test_equal_content_different_objects_share_one_entry(self):
        inner = CountingCompressor()
        cache = SizeCachingCompressor(inner)
        cache.compressed_size(block_of(2))
        cache.compressed_size(bytearray(block_of(2)))
        cache.compressed_size(memoryview(block_of(2)))
        assert inner.calls == 1
        assert len(cache) == 1

    def test_distinct_content_misses(self):
        inner = CountingCompressor()
        cache = SizeCachingCompressor(inner)
        for tag in range(5):
            cache.compressed_size(block_of(tag))
        assert inner.calls == 5
        assert cache.hits == 0


class TestLruEviction:
    def test_size_bounded_by_capacity(self):
        cache = SizeCachingCompressor(CountingCompressor(), capacity=8,
                                      probe_window=0)
        for tag in range(20):
            cache.compressed_size(block_of(tag))
        assert len(cache) == 8
        assert cache.evictions == 12

    def test_least_recently_used_goes_first(self):
        inner = CountingCompressor()
        cache = SizeCachingCompressor(inner, capacity=2, probe_window=0)
        a, b, c = block_of(1), block_of(2), block_of(3)
        cache.compressed_size(a)
        cache.compressed_size(b)
        cache.compressed_size(a)  # refresh a; b is now LRU
        cache.compressed_size(c)  # evicts b
        calls = inner.calls
        cache.compressed_size(a)
        assert inner.calls == calls  # a survived
        cache.compressed_size(b)
        assert inner.calls == calls + 1  # b was evicted

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SizeCachingCompressor(CountingCompressor(), capacity=0)


class TestAdaptiveBypass:
    def test_repetition_free_stream_trips_bypass(self):
        cache = SizeCachingCompressor(ZlibCompressor(1), probe_window=128)
        for tag in range(200):
            cache.compressed_size(block_of(tag))
        assert cache.bypassed
        assert len(cache) == 0  # entries dropped with the decision

    def test_bypassed_sizes_still_exact(self):
        cache = SizeCachingCompressor(ZlibCompressor(1), probe_window=64)
        plain = ZlibCompressor(1)
        blocks = [block_of(tag) for tag in range(100)]
        sizes = [cache.compressed_size(b) for b in blocks]
        assert cache.bypassed
        assert sizes == [plain.compressed_size(b) for b in blocks]

    def test_repetitive_stream_keeps_cache(self):
        cache = SizeCachingCompressor(ZlibCompressor(1), probe_window=64)
        blk = block_of(7)
        for _ in range(200):
            cache.compressed_size(blk)
        assert not cache.bypassed
        assert cache.hit_rate > 0.9

    def test_probe_window_zero_never_bypasses(self):
        cache = SizeCachingCompressor(CountingCompressor(), probe_window=0)
        for tag in range(300):
            cache.compressed_size(block_of(tag))
        assert not cache.bypassed

    def test_clear_rearms_the_probe(self):
        cache = SizeCachingCompressor(ZlibCompressor(1), probe_window=32)
        for tag in range(50):
            cache.compressed_size(block_of(tag))
        assert cache.bypassed
        cache.clear()
        assert not cache.bypassed
        assert cache.hits == cache.misses == cache.evictions == 0
        blk = block_of(1)
        cache.compressed_size(blk)
        cache.compressed_size(blk)
        assert cache.hits == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SizeCachingCompressor(CountingCompressor(), probe_window=-1)
        with pytest.raises(ValueError):
            SizeCachingCompressor(CountingCompressor(), min_hit_rate=1.5)


class TestBitIdenticalOnRealRun:
    def test_cached_matches_uncached_on_bminus_write_stream(self):
        """Every block a real B⁻ run compresses gets the exact zlib size."""
        from repro.bench.harness import ExperimentSpec, build_engine
        from repro.sim.rng import DeterministicRng
        from repro.workloads.runner import WorkloadRunner

        spec = ExperimentSpec(system="bminus", n_records=800, steady_ops=400)
        engine, device, clock = build_engine(spec)
        corpus = []
        inner = device.compressor
        real = inner.compressed_size

        def record(block):
            corpus.append(bytes(block))
            return real(block)

        device.compressor.compressed_size = record
        rng = DeterministicRng(spec.seed)
        runner = WorkloadRunner(engine, device, clock, n_threads=1)
        runner.populate(spec.keyspace, rng.split("populate"))
        runner.run_random_writes(spec.keyspace, 400, rng.split("steady"))
        assert len(corpus) > 100

        plain = ZlibCompressor(1)
        cached = SizeCachingCompressor(ZlibCompressor(1))
        always = SizeCachingCompressor(ZlibCompressor(1), probe_window=0)
        for block in corpus:
            expected = plain.compressed_size(block)
            assert cached.compressed_size(block) == expected
            assert always.compressed_size(block) == expected

    def test_default_capacity_is_bounded(self):
        cache = SizeCachingCompressor(ZlibCompressor(1))
        assert cache.capacity == SIZE_CACHE_CAPACITY
