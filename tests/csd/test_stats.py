"""Unit tests for the device smart-log counters."""

from repro.csd.stats import DeviceStats


def test_default_counters_zero():
    stats = DeviceStats()
    assert stats.logical_bytes_written == 0
    assert stats.physical_bytes_written == 0
    assert stats.write_ios == 0


def test_snapshot_is_independent_copy():
    stats = DeviceStats(logical_bytes_written=10)
    snap = stats.snapshot()
    stats.logical_bytes_written += 5
    assert snap.logical_bytes_written == 10
    assert stats.logical_bytes_written == 15


def test_delta_subtracts_fieldwise():
    stats = DeviceStats()
    snap = stats.snapshot()
    stats.logical_bytes_written += 100
    stats.physical_bytes_written += 40
    stats.write_ios += 3
    delta = stats.delta(snap)
    assert delta.logical_bytes_written == 100
    assert delta.physical_bytes_written == 40
    assert delta.write_ios == 3
    assert delta.read_ios == 0


def test_compression_ratio():
    stats = DeviceStats(logical_bytes_written=1000, physical_bytes_written=250)
    assert stats.compression_ratio == 0.25


def test_compression_ratio_no_writes_is_one():
    assert DeviceStats().compression_ratio == 1.0


def test_add_combines_fieldwise():
    a = DeviceStats(logical_bytes_written=1, read_ios=2)
    b = DeviceStats(logical_bytes_written=3, read_ios=4)
    c = a + b
    assert c.logical_bytes_written == 4
    assert c.read_ios == 6


def test_block_counters_default_zero_and_combine():
    stats = DeviceStats()
    assert stats.blocks_written == 0
    assert stats.blocks_read == 0
    snap = stats.snapshot()
    stats.blocks_written += 4
    stats.blocks_read += 2
    delta = stats.delta(snap)
    assert delta.blocks_written == 4
    assert delta.blocks_read == 2
    total = stats + DeviceStats(blocks_written=1, blocks_read=1)
    assert total.blocks_written == 5
    assert total.blocks_read == 3
