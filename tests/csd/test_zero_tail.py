"""Calibration tests for the zero-tail-aware zlib fast path.

``ZeroTailZlibCompressor`` compresses only the live prefix of a block (plus a
short retained zero pad) and models the cost of the remaining zero run as
``ZERO_TAIL_RATE`` bytes per zero.  The rate is an empirical property of zlib
level 1: once a zero run is ~512 bytes deep, each further 512 zeros cost a
constant 5 bytes of output, independent of what the live prefix contained.
These tests pin that calibration against real zlib across prefix lengths and
entropies.
"""

from __future__ import annotations

import random

import pytest

from repro.csd.compression import (
    ZERO_BLOCK_COST,
    ZERO_TAIL_KEEP,
    ZeroTailZlibCompressor,
    ZlibCompressor,
)

BLOCK = 4096

#: Calibration bounds established in the PR that introduced the fast path:
#: worst absolute error observed across the sweep is 8 bytes (0.2% of a 4KB
#: block); relative error only exceeds 2% for outputs smaller than ~512B,
#: where the absolute bound is the meaningful one.
MAX_ABS_ERROR_FRACTION = 0.02
MAX_REL_ERROR = 0.02
REL_ERROR_FLOOR = 512  # compressed bytes


def make_prefix(rng: random.Random, live: int, mix: str) -> bytes:
    if live == 0:
        return b""
    if mix == "random":
        prefix = bytes(rng.randrange(256) for _ in range(live))
    elif mix == "half":
        half = live // 2
        prefix = bytes(rng.randrange(256) for _ in range(half)) + bytes(
            [5] * (live - half))
    elif mix == "text":
        prefix = (b"key=%08d,value=abcdefgh;" * 256)[:live]
    else:
        raise ValueError(mix)
    if prefix[-1] == 0:
        prefix = prefix[:-1] + b"\x01"  # keep the live length exact
    return prefix


class TestExactPaths:
    def test_all_zero_block_costs_exactly_zero_block_cost(self):
        zt = ZeroTailZlibCompressor(1)
        assert zt.compressed_size(bytes(BLOCK)) == ZERO_BLOCK_COST
        assert ZlibCompressor(1).compressed_size(bytes(BLOCK)) == ZERO_BLOCK_COST

    def test_empty_block_is_free(self):
        assert ZeroTailZlibCompressor(1).compressed_size(b"") == 0

    @pytest.mark.parametrize("tail", [0, 1, 64, ZERO_TAIL_KEEP])
    def test_dense_blocks_bit_identical_to_zlib(self, tail):
        """Tail no longer than the retained pad -> exact zlib, no model."""
        rng = random.Random(11)
        zt = ZeroTailZlibCompressor(1)
        zl = ZlibCompressor(1)
        block = make_prefix(rng, BLOCK - tail, "half") + bytes(tail)
        assert zt.compressed_size(block) == zl.compressed_size(block)

    def test_accepts_memoryview(self):
        zt = ZeroTailZlibCompressor(1)
        block = bytes([3] * 100) + bytes(BLOCK - 100)
        assert zt.compressed_size(memoryview(block)) == zt.compressed_size(block)


class TestCalibrationSweep:
    @pytest.mark.parametrize("mix", ["random", "half", "text"])
    @pytest.mark.parametrize(
        "live", [16, 64, 128, 256, 512, 700, 1024, 2048, 3000, BLOCK - ZERO_TAIL_KEEP - 1]
    )
    def test_model_within_two_percent(self, live, mix):
        rng = random.Random(live * 31 + len(mix))
        zt = ZeroTailZlibCompressor(1)
        zl = ZlibCompressor(1)
        block = make_prefix(rng, live, mix) + bytes(BLOCK - live)
        estimated = zt.compressed_size(block)
        real = zl.compressed_size(block)
        abs_error = abs(estimated - real)
        assert abs_error <= MAX_ABS_ERROR_FRACTION * BLOCK, (live, mix, estimated, real)
        if real >= REL_ERROR_FLOOR:
            assert abs_error / real <= MAX_REL_ERROR, (live, mix, estimated, real)

    def test_model_is_monotone_in_tail_length(self):
        """More zeros never *reduce* the modelled size by more than rounding."""
        rng = random.Random(99)
        zt = ZeroTailZlibCompressor(1)
        prefix = make_prefix(rng, 1024, "half")
        sizes = [
            zt.compressed_size(prefix + bytes(pad))
            for pad in range(ZERO_TAIL_KEEP + 1, BLOCK - 1024, 256)
        ]
        for a, b in zip(sizes, sizes[1:]):
            assert b >= a - 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ZeroTailZlibCompressor(0)
        with pytest.raises(ValueError):
            ZeroTailZlibCompressor(1, keep=-1)
        with pytest.raises(ValueError):
            ZeroTailZlibCompressor(1, tail_rate=-0.1)


class TestEstimatorSemanticsPreserved:
    def test_zero_run_estimator_is_not_wrapped_in_fast_mode(self, monkeypatch):
        """REPRO_FAST must hand back a plain ZeroRunEstimator instance."""
        from repro.bench.harness import _compressor
        from repro.csd.compression import ZeroRunEstimator

        monkeypatch.setenv("REPRO_FAST", "1")
        compressor = _compressor()
        assert type(compressor) is ZeroRunEstimator
        assert compressor.entropy_factor == pytest.approx(0.98)
