"""Shared helpers for the seeded crash-fuzz and property test suites.

The fuzz suites draw a per-example integer ``seed`` and derive every random
choice (workload, crash point, block survival) from it, so one integer
reproduces one failing scenario exactly.  Two knobs connect that to CI and
to local debugging:

* ``REPRO_FUZZ_SEED=<n>`` pins the run.  Seed-parameterised tests replay
  exactly that scenario (``seed_strategy`` collapses to ``st.just(n)``);
  plan-parameterised tests pin Hypothesis's own PRNG via ``@seed(n)`` so
  the same examples are generated.  CI's extended-fuzz job uses this to
  run a rotating seed on ``main`` and a fixed one on pull requests.
* On failure, :func:`report_seed` appends a copy-pasteable
  ``REPRO_FUZZ_SEED=<n> pytest ...`` line to the assertion message, so the
  failing scenario from a CI log reproduces locally with no shrinking run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from hypothesis import seed as _hypothesis_seed
from hypothesis import settings as _hypothesis_settings
from hypothesis import strategies as st

#: Parsed value of the ``REPRO_FUZZ_SEED`` environment variable (accepts
#: decimal or ``0x``-prefixed hex), or ``None`` when the variable is unset.
FUZZ_SEED: Optional[int] = None
_raw = os.environ.get("REPRO_FUZZ_SEED")
if _raw:
    FUZZ_SEED = int(_raw, 0)


def seed_strategy(lo: int = 0, hi: int = 2**32) -> st.SearchStrategy:
    """Strategy for a scenario seed: ``integers(lo, hi)``, unless
    ``REPRO_FUZZ_SEED`` is set, in which case exactly that seed."""
    if FUZZ_SEED is not None:
        return st.just(FUZZ_SEED)
    return st.integers(lo, hi)


def fuzz_settings(**kwargs):
    """``hypothesis.settings(...)`` plus the ``REPRO_FUZZ_SEED`` pin.

    With the environment variable set, the decorated test also gets
    ``@hypothesis.seed(n)`` (deterministic example generation) and, for
    seed-parameterised tests combined with :func:`seed_strategy`, runs the
    pinned scenario only once (``max_examples=1``).
    """
    if FUZZ_SEED is not None:
        kwargs.setdefault("print_blob", True)

        def decorate(fn):
            return _hypothesis_seed(FUZZ_SEED)(_hypothesis_settings(**kwargs)(fn))

        return decorate
    return _hypothesis_settings(**kwargs)


@contextmanager
def report_seed(seed: int) -> Iterator[None]:
    """Re-raise assertion failures with a ``REPRO_FUZZ_SEED`` repro line."""
    try:
        yield
    except AssertionError as exc:
        raise AssertionError(
            f"{exc}\nreproduce with: REPRO_FUZZ_SEED={seed} "
            f"PYTHONPATH=src python -m pytest <this test>"
        ) from None
