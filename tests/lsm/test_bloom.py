"""Unit tests for the bloom filter."""

import pytest

from repro.lsm.bloom import BloomFilter


def keys(start, n):
    return [i.to_bytes(8, "big") for i in range(start, start + n)]


def test_validation():
    with pytest.raises(ValueError):
        BloomFilter(-1)
    with pytest.raises(ValueError):
        BloomFilter(10, bits_per_key=0)


def test_no_false_negatives():
    filt = BloomFilter(1000, bits_per_key=10)
    for k in keys(0, 1000):
        filt.add(k)
    assert all(filt.may_contain(k) for k in keys(0, 1000))


def test_false_positive_rate_roughly_one_percent():
    """10 bits/key gives ~0.8-1.2% false positives (RocksDB's quoted rate)."""
    filt = BloomFilter(10_000, bits_per_key=10)
    for k in keys(0, 10_000):
        filt.add(k)
    false_positives = sum(filt.may_contain(k) for k in keys(1_000_000, 20_000))
    rate = false_positives / 20_000
    assert rate < 0.03


def test_fewer_bits_higher_fp_rate():
    dense = BloomFilter(5000, bits_per_key=10)
    sparse = BloomFilter(5000, bits_per_key=2)
    for k in keys(0, 5000):
        dense.add(k)
        sparse.add(k)
    probe = keys(1_000_000, 5000)
    fp_dense = sum(dense.may_contain(k) for k in probe)
    fp_sparse = sum(sparse.may_contain(k) for k in probe)
    assert fp_sparse > fp_dense * 3


def test_probe_count_follows_bits_per_key():
    assert BloomFilter(10, bits_per_key=10).num_probes == 7
    assert BloomFilter(10, bits_per_key=4).num_probes == 3


def test_empty_filter_rejects_everything():
    filt = BloomFilter(100)
    assert not filt.may_contain(b"anything")


def test_serialization_roundtrip():
    filt = BloomFilter(500, bits_per_key=10)
    for k in keys(0, 500):
        filt.add(k)
    restored = BloomFilter.from_bytes(filt.to_bytes())
    assert restored.num_bits == filt.num_bits
    assert restored.num_probes == filt.num_probes
    assert all(restored.may_contain(k) for k in keys(0, 500))


def test_serialized_size_matches():
    filt = BloomFilter(100)
    assert len(filt.to_bytes()) == filt.serialized_size()
