"""Unit tests for compaction merging."""

import pytest

from repro.csd.device import CompressedBlockDevice
from repro.lsm.compaction import merge_tables, write_merged
from repro.lsm.sstable import ExtentAllocator, SSTableReader, SSTableWriter


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


@pytest.fixture
def rig():
    device = CompressedBlockDevice(num_blocks=8192)
    return device, ExtentAllocator(0, 8192)


def build(rig, records, table_id, seq):
    device, allocator = rig
    writer = SSTableWriter(device, allocator, table_id, seq, max(1, len(records)))
    for k, v in records:
        writer.add(k, v)
    meta, _, _ = writer.finish()
    return SSTableReader.open(device, meta.start_block, meta.num_blocks)


def test_merge_disjoint_tables(rig):
    a = build(rig, [(key(i), b"a") for i in range(0, 10)], 1, 1)
    b = build(rig, [(key(i), b"b") for i in range(10, 20)], 2, 2)
    merged = list(merge_tables([a, b], drop_tombstones=False))
    assert [k for k, _ in merged] == [key(i) for i in range(20)]


def test_merge_newest_wins_on_duplicates(rig):
    old = build(rig, [(key(i), b"old") for i in range(10)], 1, 1)
    new = build(rig, [(key(i), b"new") for i in range(5, 15)], 2, 9)
    merged = dict(merge_tables([old, new], drop_tombstones=False))
    for i in range(5):
        assert merged[key(i)] == b"old"
    for i in range(5, 15):
        assert merged[key(i)] == b"new"


def test_merge_carries_tombstones_when_not_bottom(rig):
    base = build(rig, [(key(1), b"v"), (key(2), b"v")], 1, 1)
    deleter = build(rig, [(key(1), None)], 2, 9)
    merged = dict(merge_tables([base, deleter], drop_tombstones=False))
    assert merged[key(1)] is None  # tombstone survives


def test_merge_drops_tombstones_at_bottom(rig):
    base = build(rig, [(key(1), b"v"), (key(2), b"v")], 1, 1)
    deleter = build(rig, [(key(1), None)], 2, 9)
    merged = dict(merge_tables([base, deleter], drop_tombstones=True))
    assert key(1) not in merged
    assert merged[key(2)] == b"v"


def test_merge_tombstone_of_absent_key_dropped_at_bottom(rig):
    deleter = build(rig, [(key(9), None)], 1, 1)
    assert list(merge_tables([deleter], drop_tombstones=True)) == []


def test_write_merged_splits_by_target_size(rig):
    device, allocator = rig
    big = build(rig, [(key(i), bytes(200)) for i in range(500)], 1, 1)
    counter = iter(range(100, 200))

    def make_writer():
        table_id = next(counter)
        return SSTableWriter(device, allocator, table_id, 50, 500)

    metas, logical, physical = write_merged(
        merge_tables([big], drop_tombstones=False), make_writer,
        table_target_bytes=16 << 10,
    )
    assert len(metas) > 3  # split into several output tables
    assert sum(m.n_records for m in metas) == 500
    # Outputs are disjoint and ordered.
    for left, right in zip(metas, metas[1:]):
        assert left.max_key < right.min_key
    assert logical >= physical > 0


def test_write_merged_empty_stream(rig):
    device, allocator = rig
    metas, logical, physical = write_merged(
        iter([]), lambda: None, table_target_bytes=1 << 20)
    assert metas == []
    assert logical == physical == 0
