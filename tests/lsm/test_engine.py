"""Integration and property tests for the LSM engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csd.device import CompressedBlockDevice
from repro.errors import ConfigError, KeyNotFoundError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.metrics.counters import compute_wa


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


def value(rng, size=120):
    return rng.randbytes(size // 2) + bytes(size - size // 2)


def make_config(**overrides) -> LSMConfig:
    base = dict(
        memtable_bytes=16 << 10,
        level_base_bytes=64 << 10,
        table_target_bytes=16 << 10,
        log_blocks=1024,
        log_flush_policy="commit",
    )
    base.update(overrides)
    return LSMConfig(**base)


def make_engine(device=None, **overrides):
    device = device or CompressedBlockDevice(num_blocks=300_000)
    return LSMEngine(device, make_config(**overrides)), device


def test_config_validation():
    with pytest.raises(ConfigError):
        LSMConfig(memtable_bytes=0).validate()
    with pytest.raises(ConfigError):
        LSMConfig(level_size_ratio=1.0).validate()
    with pytest.raises(ConfigError):
        LSMConfig(wal_mode="sparse").validate()  # LSM models RocksDB: packed


def test_put_get_within_memtable():
    engine, _ = make_engine()
    engine.put(key(1), b"v")
    assert engine.get(key(1)) == b"v"
    assert engine.get(key(2)) is None


def test_delete_semantics():
    engine, _ = make_engine()
    engine.put(key(1), b"v")
    engine.delete(key(1))
    assert engine.get(key(1)) is None
    with pytest.raises(KeyNotFoundError):
        engine.delete_checked(key(1))


def test_get_spans_flushed_tables():
    engine, _ = make_engine()
    rng = random.Random(0)
    expected = {}
    for i in range(3000):
        k = key(i)
        expected[k] = value(rng, 60)
        engine.put(k, expected[k])
        engine.commit()
    assert engine.memtable_flushes > 0
    for k, v in list(expected.items())[::17]:
        assert engine.get(k) == v


def test_newest_version_wins_across_levels():
    engine, _ = make_engine()
    for round_no in range(6):
        for i in range(500):
            engine.put(key(i), f"round-{round_no}-{i}".encode())
            engine.commit()
    for i in range(0, 500, 13):
        assert engine.get(key(i)) == f"round-5-{i}".encode()


def test_deletes_survive_compaction():
    engine, _ = make_engine()
    rng = random.Random(2)
    for i in range(2000):
        engine.put(key(i), value(rng, 60))
        engine.commit()
    for i in range(0, 2000, 2):
        engine.delete(key(i))
        engine.commit()
    engine.flush_memtable()
    for i in range(0, 2000, 20):
        assert engine.get(key(i)) is None, i
        assert engine.get(key(i + 1)) is not None


def test_scan_merged_view():
    engine, _ = make_engine()
    rng = random.Random(3)
    expected = {}
    for i in rng.sample(range(20_000), 3000):
        expected[key(i)] = value(rng, 40)
        engine.put(key(i), expected[key(i)])
        engine.commit()
    start = key(5000)
    got = engine.scan(start, 100)
    want = sorted((k, v) for k, v in expected.items() if k >= start)[:100]
    assert got == want


def test_items_equals_reference():
    engine, _ = make_engine()
    rng = random.Random(4)
    reference = {}
    for _ in range(8000):
        k = key(rng.randrange(2500))
        if rng.random() < 0.2 and reference:
            victim = rng.choice(sorted(reference))
            engine.delete(victim)
            del reference[victim]
        else:
            v = value(rng, rng.randrange(16, 120))
            engine.put(k, v)
            reference[k] = v
        engine.commit()
    assert dict(engine.items()) == reference


def test_levels_form_and_respect_targets():
    engine, _ = make_engine()
    rng = random.Random(5)
    for i in range(12_000):
        engine.put(key(rng.randrange(6000)), value(rng, 100))
        engine.commit()
    shape = engine.level_shape()
    assert engine.versions.num_nonempty_levels() >= 3
    # Leveled invariant: L1 within ~2x of its target after compactions.
    assert shape[1] <= 2.5 * engine.config.level_base_bytes
    assert engine.compactions_run > 0


def test_compaction_reclaims_space():
    """Old table extents are trimmed; physical usage tracks live data."""
    engine, device = make_engine()
    rng = random.Random(6)
    for _ in range(3):
        for i in range(1500):  # overwrite the same keys repeatedly
            engine.put(key(i), value(rng, 100))
            engine.commit()
    live = device.physical_bytes_used
    written = device.stats.physical_bytes_written
    assert live < written / 2  # most history reclaimed by TRIM


def test_wal_replay_after_crash():
    engine, device = make_engine()
    rng = random.Random(7)
    committed = {}
    for i in range(4000):
        k = key(rng.randrange(1200))
        v = value(rng, rng.randrange(16, 120))
        engine.put(k, v)
        committed[k] = v
        engine.commit()
    device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
    recovered = LSMEngine.open(device, make_config())
    assert dict(recovered.items()) == committed


def test_crash_loses_uncommitted_tail():
    engine, device = make_engine()
    engine.put(key(1), b"committed")
    engine.commit()
    engine.put(key(2), b"uncommitted")
    device.simulate_crash()
    recovered = LSMEngine.open(device, make_config())
    assert recovered.get(key(1)) == b"committed"
    assert recovered.get(key(2)) is None


def test_reopen_after_clean_close():
    engine, device = make_engine()
    rng = random.Random(8)
    expected = {key(i): value(rng, 80) for i in range(2000)}
    for k, v in expected.items():
        engine.put(k, v)
        engine.commit()
    engine.close()
    reopened = LSMEngine.open(device, make_config())
    assert dict(reopened.items()) == expected
    # And it keeps working after reopen.
    reopened.put(key(99999), b"fresh")
    assert reopened.get(key(99999)) == b"fresh"


def test_repeated_crashes():
    device = CompressedBlockDevice(num_blocks=300_000)
    engine = LSMEngine(device, make_config())
    rng = random.Random(9)
    committed = {}
    for round_no in range(3):
        for _ in range(1500):
            k = key(rng.randrange(800))
            v = value(rng, 64)
            engine.put(k, v)
            committed[k] = v
            engine.commit()
        device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
        engine = LSMEngine.open(device, make_config())
        assert dict(engine.items()) == committed, f"round {round_no}"


def test_traffic_decomposition():
    engine, device = make_engine()
    rng = random.Random(10)
    for i in range(5000):
        engine.put(key(rng.randrange(1500)), value(rng))
        engine.commit()
    snap = engine.traffic_snapshot()
    assert snap.page_logical == engine.flush_logical + engine.compact_logical
    report = compute_wa(snap)
    assert report.wa_total > 1.0
    assert report.wa_total < report.wa_total_logical  # compression helps
    assert device.stats.physical_bytes_written >= snap.total_physical


def test_wal_none_mode():
    engine, _ = make_engine(wal_mode="none")
    engine.put(key(1), b"v")
    engine.commit()
    assert engine.traffic_snapshot().log_logical == 0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_property_lsm_matches_dict(seed):
    rng = random.Random(seed)
    engine, _ = make_engine()
    reference = {}
    for _ in range(rng.randrange(500, 2500)):
        k = key(rng.randrange(600))
        action = rng.random()
        if action < 0.2 and reference:
            victim = rng.choice(sorted(reference))
            engine.delete(victim)
            del reference[victim]
        elif action < 0.25:
            probe = key(rng.randrange(600))
            assert engine.get(probe) == reference.get(probe)
        else:
            v = value(rng, rng.randrange(8, 120))
            engine.put(k, v)
            reference[k] = v
        engine.commit()
    assert dict(engine.items()) == reference
