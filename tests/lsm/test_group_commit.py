"""LSM group-atomic mode: COMMIT markers, frozen-memtable handoff, stalls.

In ``group_atomic`` mode the LSM defers all memtable lifecycle decisions to
commit boundaries: ``commit()`` seals the window with a marker and flushes
the WAL, then (between windows) flushes a due frozen memtable, guards the
WAL ring, and freezes a full active memtable.  The write-stall state machine
mirrors RocksDB: a full active memtable with the frozen backlog at its limit
stalls writers until the oldest frozen table's background flush is due.
"""

import pytest

from repro.csd.device import CompressedBlockDevice
from repro.errors import ConfigError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.sim.clock import SimClock


def _config(**over):
    base = dict(memtable_bytes=2 << 10, level_base_bytes=32 << 10,
                table_target_bytes=8 << 10, log_blocks=512,
                log_flush_policy="commit", group_atomic=True,
                flush_latency=0.01, max_frozen_memtables=2)
    base.update(over)
    return LSMConfig(**base)


def _engine(device=None, clock=None, **over):
    device = device or CompressedBlockDevice(num_blocks=20_000)
    clock = clock or SimClock()
    return device, clock, LSMEngine(device, _config(**over), clock)


def key(i):
    return i.to_bytes(8, "big")


def _fill_one_memtable(engine, base=0, per_commit=8):
    """Put (with commits) until the active memtable has been swapped once."""
    i = base
    freezes = engine.memtable_freezes
    while engine.memtable_freezes == freezes:
        for _ in range(per_commit):
            engine.put(key(i), b"v" * 48)
            i += 1
        engine.commit()
        assert i < base + 10_000, "memtable never froze"
    return i


# ---------------------------------------------------------- configuration


def test_group_atomic_requires_commit_policy_wal():
    with pytest.raises(ConfigError, match="group_atomic"):
        _config(log_flush_policy="interval").validate()
    with pytest.raises(ConfigError, match="group_atomic"):
        _config(wal_mode="none").validate()


# ---------------------------------------------------- freeze/flush handoff


def test_full_memtable_freezes_at_commit_boundary_not_mid_window():
    device, clock, engine = _engine()
    next_key = _fill_one_memtable(engine)
    assert len(engine.frozen) == 1
    # Frozen tables keep serving reads until their background flush.
    assert engine.get(key(0)) == b"v" * 48
    assert engine.stall_relief_at() == pytest.approx(clock.now + 0.01)


def test_frozen_table_flushes_when_due_and_cursor_advances():
    device, clock, engine = _engine(max_frozen_memtables=4)
    _fill_one_memtable(engine)
    flushes = engine.memtable_flushes
    clock.advance(0.02)  # past flush_latency
    engine.tick()
    assert engine.memtable_flushes == flushes + 1
    assert not engine.frozen
    assert engine.get(key(0)) == b"v" * 48  # now from the level-0 table


def test_write_stall_engages_and_clears():
    device, clock, engine = _engine(max_frozen_memtables=1,
                                    flush_latency=0.05)
    next_key = _fill_one_memtable(engine)
    assert not engine.write_stalled  # backlog full but active table empty
    # Fill the active memtable while the backlog is at its limit.
    i = next_key
    while not engine.write_stalled:
        for _ in range(8):
            engine.put(key(i), b"v" * 48)
            i += 1
        engine.commit()
        assert i < next_key + 10_000, "stall never engaged"
    relief = engine.stall_relief_at()
    assert relief > clock.now
    clock.advance_to(relief)
    engine.tick()  # flushes the due frozen table
    engine.commit()  # boundary maintenance freezes the full active table
    assert not engine.write_stalled


# ----------------------------------------------------------- crash/recover


def test_committed_window_replays_uncommitted_tail_rolls_back():
    device, clock, engine = _engine()
    engine.put(key(1), b"committed")
    engine.commit()
    engine.put(key(2), b"ghost")
    engine.wal.flush()  # durable but unmarked: the worst crash point
    device.flush()
    recovered = LSMEngine.open(device, _config(), SimClock())
    assert recovered.get(key(1)) == b"committed"
    assert recovered.get(key(2)) is None


def test_rolled_back_records_stay_dead_across_second_recovery():
    device, clock, engine = _engine()
    engine.put(key(1), b"committed")
    engine.commit()
    engine.put(key(2), b"ghost")
    engine.wal.flush()
    device.flush()

    second = LSMEngine.open(device, _config(), SimClock())
    assert second.get(key(2)) is None
    second.put(key(3), b"later")
    second.commit()
    device.flush()

    third = LSMEngine.open(device, _config(), SimClock())
    assert third.get(key(1)) == b"committed"
    assert third.get(key(2)) is None, "rolled-back record resurrected"
    assert third.get(key(3)) == b"later"


def test_frozen_memtable_records_survive_a_crash_before_flush():
    """Freeze is not durability-relevant: frozen records stay WAL-covered
    until tabled, so a crash between freeze and flush replays them."""
    device, clock, engine = _engine()
    next_key = _fill_one_memtable(engine)
    assert engine.frozen
    device.simulate_crash()
    recovered = LSMEngine.open(device, _config(), SimClock())
    for i in range(next_key):
        assert recovered.get(key(i)) == b"v" * 48, i


def test_clean_close_seals_the_open_window():
    device, clock, engine = _engine()
    engine.put(key(9), b"sealed")
    engine.close()
    device.flush()
    recovered = LSMEngine.open(device, _config(), SimClock())
    assert recovered.get(key(9)) == b"sealed"
