"""Unit tests for the shadowed manifest."""

import pytest

from repro.btree.wal import LogPosition
from repro.csd.device import CompressedBlockDevice
from repro.errors import LsmError
from repro.lsm.manifest import Manifest, ManifestEntry


@pytest.fixture
def device():
    return CompressedBlockDevice(num_blocks=256)


def entry(i, level=0):
    return ManifestEntry(level, i, i * 10, i * 100, 8)


def test_fresh_device_loads_none(device):
    assert Manifest(device, 0, 4).load() is None


def test_region_validation(device):
    with pytest.raises(LsmError):
        Manifest(device, 0, 0)


def test_persist_load_roundtrip(device):
    manifest = Manifest(device, 0, 4)
    entries = [entry(1), entry(2, level=3)]
    manifest.persist(entries, next_table_id=9, next_seq=17,
                     log_pos=LogPosition(5, 42))
    state = Manifest(device, 0, 4).load()
    assert state is not None
    assert state.next_table_id == 9
    assert state.next_seq == 17
    assert state.log_pos == LogPosition(5, 42)
    assert len(state.entries) == 2
    assert state.entries[1].level == 3
    assert state.entries[1].table_id == 2


def test_generations_alternate_and_newest_wins(device):
    manifest = Manifest(device, 0, 4)
    for generation in range(1, 6):
        manifest.persist([entry(generation)], generation, generation,
                         LogPosition(0, 1))
    state = Manifest(device, 0, 4).load()
    assert state.generation == 5
    assert state.entries[0].table_id == 5


def test_corrupt_copy_falls_back_to_other(device):
    manifest = Manifest(device, 0, 4)
    manifest.persist([entry(1)], 1, 1, LogPosition(0, 1))  # generation 1 -> copy B
    manifest.persist([entry(2)], 2, 2, LogPosition(0, 1))  # generation 2 -> copy A
    # Corrupt the newer copy (generation 2 lives at copy index 0).
    device.write_block(0, b"\xff" * 4096)
    device.flush()
    state = Manifest(device, 0, 4).load()
    assert state.generation == 1
    assert state.entries[0].table_id == 1


def test_torn_manifest_write_recovers_previous(device):
    manifest = Manifest(device, 0, 4)
    manifest.persist([entry(1)], 1, 1, LogPosition(0, 1))
    device.flush()
    # The next persist is torn: only its first block lands.
    first_lba_of_copy_a = 0  # generation 2 -> copy index 0
    manifest._generation = 1  # simulate by writing garbage at copy A
    device.write_block(first_lba_of_copy_a, b"\x11" * 4096)
    device.simulate_crash(survives=lambda lba: lba == first_lba_of_copy_a)
    state = Manifest(device, 0, 4).load()
    assert state is not None and state.generation == 1


def test_capacity_enforced(device):
    manifest = Manifest(device, 0, 1)
    too_many = [entry(i) for i in range(manifest.capacity_entries + 1)]
    with pytest.raises(LsmError):
        manifest.persist(too_many, 1, 1, LogPosition(0, 1))


def test_write_accounting(device):
    manifest = Manifest(device, 0, 2)
    manifest.persist([entry(1)], 1, 1, LogPosition(0, 1))
    assert manifest.logical_bytes == 2 * 4096
    assert 0 < manifest.physical_bytes < manifest.logical_bytes
