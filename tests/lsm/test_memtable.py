"""Unit and property tests for the skiplist memtable."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.memtable import MemTable


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


def test_empty():
    table = MemTable()
    assert len(table) == 0
    assert table.get(key(1)) == (False, None)
    assert list(table.items()) == []
    assert table.min_key() is None


def test_put_get():
    table = MemTable()
    table.put(key(1), b"one")
    assert table.get(key(1)) == (True, b"one")
    assert len(table) == 1


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        MemTable().put(b"", b"v")


def test_update_in_place():
    table = MemTable()
    table.put(key(1), b"a")
    table.put(key(1), b"bb")
    assert table.get(key(1)) == (True, b"bb")
    assert len(table) == 1


def test_tombstone():
    table = MemTable()
    table.put(key(1), b"v")
    table.delete(key(1))
    assert table.get(key(1)) == (True, None)  # found, but a tombstone
    assert len(table) == 1  # tombstones occupy an entry


def test_blind_tombstone():
    table = MemTable()
    table.delete(key(9))
    assert table.get(key(9)) == (True, None)


def test_items_sorted():
    table = MemTable()
    for i in [5, 1, 9, 3, 7]:
        table.put(key(i), bytes([i]))
    assert [k for k, _ in table.items()] == [key(i) for i in [1, 3, 5, 7, 9]]


def test_items_from():
    table = MemTable()
    for i in range(0, 20, 2):
        table.put(key(i), b"v")
    assert [k for k, _ in table.items_from(key(7))] == [key(i) for i in range(8, 20, 2)]


def test_min_max_keys():
    table = MemTable()
    for i in [4, 2, 8]:
        table.put(key(i), b"v")
    assert table.min_key() == key(2)
    assert table.max_key() == key(8)


def test_approximate_bytes_grows_and_adjusts():
    table = MemTable()
    table.put(key(1), b"x" * 100)
    first = table.approximate_bytes
    assert first >= 108
    table.put(key(1), b"x" * 10)  # shrinking update adjusts accounting
    assert table.approximate_bytes == first - 90


def test_large_insert_order_independent():
    import random

    rng = random.Random(42)
    table = MemTable()
    keys = rng.sample(range(100_000), 5000)
    for i in keys:
        table.put(key(i), str(i).encode())
    assert len(table) == 5000
    assert [k for k, _ in table.items()] == [key(i) for i in sorted(keys)]


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_memtable_matches_dict(data):
    table = MemTable(seed=data.draw(st.integers(0, 100)))
    reference: dict[bytes, bytes] = {}
    universe = [key(i) for i in range(64)]
    for _ in range(data.draw(st.integers(1, 150))):
        k = data.draw(st.sampled_from(universe))
        if data.draw(st.booleans()):
            v = data.draw(st.binary(max_size=20))
            table.put(k, v)
            reference[k] = v
        else:
            table.delete(k)
            reference[k] = None
    for k in universe:
        found, value = table.get(k)
        assert found == (k in reference)
        if found:
            assert value == reference[k]
    assert [k for k, _ in table.items()] == sorted(reference)
