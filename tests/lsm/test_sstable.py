"""Unit tests for SSTables and the extent allocator."""

import pytest

from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.errors import LsmError
from repro.lsm.sstable import (
    ExtentAllocator,
    SSTableReader,
    SSTableWriter,
)
from repro.sim.rng import DeterministicRng


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


@pytest.fixture
def device():
    return CompressedBlockDevice(num_blocks=4096)


@pytest.fixture
def allocator():
    return ExtentAllocator(0, 4096)


def build_table(device, allocator, records, table_id=1, seq=1):
    writer = SSTableWriter(device, allocator, table_id, seq, len(records) or 1)
    for k, v in records:
        writer.add(k, v)
    meta, logical, physical = writer.finish()
    return SSTableReader.open(device, meta.start_block, meta.num_blocks), meta


# --------------------------------------------------------------- allocator


def test_allocator_basic():
    alloc = ExtentAllocator(10, 100)
    a = alloc.allocate(10)
    b = alloc.allocate(20)
    assert a == 10 and b == 20
    assert alloc.free_blocks == 70


def test_allocator_free_coalesces():
    alloc = ExtentAllocator(0, 100)
    a = alloc.allocate(10)
    b = alloc.allocate(10)
    alloc.free(a, 10)
    alloc.free(b, 10)
    assert alloc.allocate(100) == 0  # whole pool contiguous again


def test_allocator_exhaustion():
    alloc = ExtentAllocator(0, 10)
    alloc.allocate(10)
    with pytest.raises(LsmError):
        alloc.allocate(1)


def test_allocator_first_fit_reuses_gap():
    alloc = ExtentAllocator(0, 100)
    a = alloc.allocate(10)
    alloc.allocate(10)
    alloc.free(a, 10)
    assert alloc.allocate(5) == a


def test_allocator_mark_used():
    alloc = ExtentAllocator(0, 100)
    alloc.mark_used(20, 10)
    assert alloc.free_blocks == 90
    with pytest.raises(LsmError):
        alloc.mark_used(25, 10)  # overlaps an already-used range


def test_allocator_validation():
    with pytest.raises(ValueError):
        ExtentAllocator(0, 0)
    with pytest.raises(ValueError):
        ExtentAllocator(0, 10).allocate(0)


# ----------------------------------------------------------------- tables


def test_write_read_roundtrip(device, allocator):
    records = [(key(i), bytes([i % 256]) * 20) for i in range(500)]
    reader, meta = build_table(device, allocator, records)
    assert meta.n_records == 500
    assert meta.min_key == key(0)
    assert meta.max_key == key(499)
    for k, v in records:
        assert reader.get(k) == (True, v)
    assert list(reader.iter_all()) == records


def test_get_absent_key(device, allocator):
    reader, _ = build_table(device, allocator, [(key(2), b"v"), (key(4), b"v")])
    assert reader.get(key(3)) == (False, None)
    assert reader.get(key(0)) == (False, None)
    assert reader.get(key(9)) == (False, None)


def test_tombstones_roundtrip(device, allocator):
    records = [(key(1), b"v"), (key(2), None), (key(3), b"w")]
    reader, _ = build_table(device, allocator, records)
    assert reader.get(key(2)) == (True, None)
    assert list(reader.iter_all()) == records


def test_unsorted_input_rejected(device, allocator):
    writer = SSTableWriter(device, allocator, 1, 1, 10)
    writer.add(key(5), b"v")
    with pytest.raises(LsmError):
        writer.add(key(4), b"v")
    with pytest.raises(LsmError):
        writer.add(key(5), b"v")  # duplicates forbidden too


def test_empty_table_rejected(device, allocator):
    writer = SSTableWriter(device, allocator, 1, 1, 1)
    with pytest.raises(LsmError):
        writer.finish()


def test_oversized_record_rejected(device, allocator):
    writer = SSTableWriter(device, allocator, 1, 1, 1)
    with pytest.raises(LsmError):
        writer.add(key(1), b"x" * BLOCK_SIZE)


def test_iter_from_midpoint(device, allocator):
    records = [(key(i), b"v") for i in range(0, 1000, 2)]
    reader, _ = build_table(device, allocator, records)
    got = [k for k, _ in reader.iter_from(key(501))]
    assert got == [key(i) for i in range(502, 1000, 2)]


def test_multi_block_tables(device, allocator):
    rng = DeterministicRng(1)
    records = [(key(i), rng.random_bytes(100)) for i in range(2000)]
    reader, meta = build_table(device, allocator, records)
    assert meta.num_blocks > 50  # spans many data blocks
    for k, v in records[::37]:
        assert reader.get(k) == (True, v)


def test_bloom_suppresses_reads_for_absent_keys(device, allocator):
    records = [(key(i), b"v" * 50) for i in range(0, 2000, 2)]
    reader, _ = build_table(device, allocator, records)
    before = device.stats.read_ios
    hits = 0
    for i in range(1, 2000, 2):  # absent keys inside the table's range
        hits += reader.get(key(i))[0]
    assert hits == 0
    reads = device.stats.read_ios - before
    assert reads < 2000 * 0.05  # only bloom false positives touch the device


def test_footer_corruption_detected(device, allocator):
    _, meta = build_table(device, allocator, [(key(1), b"v")])
    footer_lba = meta.start_block + meta.num_blocks - 1
    device.write_block(footer_lba, b"\x00" * BLOCK_SIZE)
    with pytest.raises(LsmError):
        SSTableReader.open(device, meta.start_block, meta.num_blocks)


def test_reopen_from_device(device, allocator):
    records = [(key(i), bytes([i % 251]) * 30) for i in range(300)]
    _, meta = build_table(device, allocator, records, table_id=7, seq=9)
    device.flush()
    reopened = SSTableReader.open(device, meta.start_block, meta.num_blocks)
    assert reopened.meta.table_id == 7
    assert reopened.meta.seq == 9
    assert dict(reopened.iter_all()) == dict(records)


def test_zero_padding_compresses_away(device, allocator):
    """Half-zero record content + block padding: physical << logical."""
    rng = DeterministicRng(2)
    records = [(key(i), rng.random_bytes(60) + bytes(60)) for i in range(1000)]
    before = device.stats.snapshot()
    build_table(device, allocator, records)
    delta = device.stats.delta(before)
    assert delta.physical_bytes_written < 0.7 * delta.logical_bytes_written
