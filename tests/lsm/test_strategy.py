"""Unit tests for the pluggable compaction strategies."""

import pytest

from repro.csd.device import CompressedBlockDevice
from repro.errors import ConfigError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.lsm.strategy import STRATEGIES, get_strategy
from repro.lsm.strategy.tiered import run_trigger


def small_config(strategy: str = "leveled", **overrides) -> LSMConfig:
    options = dict(
        memtable_bytes=4 * 1024,
        log_blocks=512,
        log_flush_policy="commit",
        compaction_strategy=strategy,
    )
    options.update(overrides)
    return LSMConfig(**options)


def churn(engine, n_keys: int = 120, passes: int = 3) -> dict:
    expected = {}
    for generation in range(passes):
        for i in range(n_keys):
            key = b"key%05d" % i
            value = b"v%d-" % generation + bytes([i % 251]) * (40 + (i * 7) % 100)
            engine.put(key, value)
            expected[key] = value
            if i % 16 == 15:
                engine.commit()
        engine.commit()
    return expected


# ---------------------------------------------------------------- registry


def test_registry_names():
    assert sorted(STRATEGIES) == ["lazy-leveled", "leveled", "partial", "tiered"]
    for name, cls in STRATEGIES.items():
        assert cls.name == name
        assert get_strategy(name).name == name


def test_unknown_strategy_raises_config_error():
    with pytest.raises(ConfigError, match="unknown compaction_strategy"):
        get_strategy("universal")


def test_overlapping_levels_flags():
    assert get_strategy("leveled").overlapping_levels is False
    assert get_strategy("partial").overlapping_levels is False
    assert get_strategy("tiered").overlapping_levels is True
    assert get_strategy("lazy-leveled").overlapping_levels is True


def test_tiered_run_trigger():
    config = small_config("tiered")
    assert run_trigger(0, config) == config.l0_compaction_trigger
    assert run_trigger(1, config) == max(2, int(config.level_size_ratio))
    assert run_trigger(3, config) == run_trigger(1, config)


# ------------------------------------------------------------- validation


def test_validate_rejects_unknown_strategy():
    with pytest.raises(ConfigError, match="unknown compaction_strategy"):
        small_config("universal").validate()


def test_validate_rejects_bad_partial_slice():
    with pytest.raises(ConfigError):
        small_config("partial", partial_slice_tables=0).validate()


def test_validate_rejects_bad_threshold():
    with pytest.raises(ConfigError):
        small_config(value_separation_threshold=-1).validate()
    with pytest.raises(ConfigError):
        small_config(value_separation_threshold=0).validate()


def test_validate_rejects_separation_without_wal():
    with pytest.raises(ConfigError, match="WAL"):
        small_config(value_separation_threshold=64, wal_mode="none").validate()


def test_validate_rejects_bad_vlog_geometry():
    with pytest.raises(ConfigError):
        small_config(value_separation_threshold=64, vlog_segments=1).validate()
    with pytest.raises(ConfigError):
        small_config(value_separation_threshold=64,
                     vlog_segment_blocks=0).validate()
    with pytest.raises(ConfigError):
        small_config(value_separation_threshold=64, vlog_segments=4,
                     vlog_gc_free_segments=4).validate()


# ------------------------------------------------------- engine behaviour


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_strategy_reads_back_full_state(strategy):
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, small_config(strategy))
    expected = churn(engine)
    assert dict(engine.items()) == expected
    for key in (b"key00000", b"key00059", b"key00119"):
        assert engine.get(key) == expected[key]
    engine.close()


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_strategy_state_survives_reopen(strategy):
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, small_config(strategy))
    expected = churn(engine)
    engine.close()
    reopened = LSMEngine.open(device, small_config(strategy))
    assert dict(reopened.items()) == expected
    reopened.close()


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_strategies_compact_at_this_workload(strategy):
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, small_config(strategy))
    churn(engine)
    assert engine.compactions_run > 0, strategy
    assert any(engine.level_shape()[1:]), strategy  # data reached level >= 1
    engine.close()


def test_tiered_levels_hold_overlapping_runs():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, small_config("tiered"))
    churn(engine, n_keys=200, passes=4)
    deep = [len(tables) for tables in engine.versions.levels[1:]]
    assert max(deep) >= 2  # a deep level holds several runs at once
    engine.close()


def test_lazy_leveled_keeps_last_level_single_run():
    config = small_config("lazy-leveled", max_levels=3)
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, config)
    churn(engine, n_keys=200, passes=4)
    last = config.max_levels - 1
    assert len(engine.versions.levels[last]) <= 1
    engine.close()


def test_partial_jobs_take_bounded_l0_slices():
    config = small_config("partial", partial_slice_tables=1)
    strategy = get_strategy("partial")
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, config)
    # Fill L0 to the trigger without letting maintenance run it dry first:
    # plan directly against the live version set after a burst of flushes.
    churn(engine, n_keys=150, passes=2)
    jobs = strategy.plan(engine.versions, config)
    for job in jobs:
        if job.level == 0:
            assert len(job.inputs) <= config.partial_slice_tables
    engine.close()


def test_strategies_agree_on_final_state():
    states = {}
    for strategy in sorted(STRATEGIES):
        device = CompressedBlockDevice(num_blocks=1 << 14)
        engine = LSMEngine(device, small_config(strategy))
        expected = churn(engine, n_keys=150, passes=3)
        states[strategy] = dict(engine.items())
        engine.close()
        assert states[strategy] == expected, strategy
    reference = states["leveled"]
    for strategy, state in states.items():
        assert state == reference, strategy


def test_deletes_do_not_resurrect_under_tiering():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, small_config("tiered"))
    expected = churn(engine, n_keys=120, passes=2)
    for i in range(0, 120, 3):
        key = b"key%05d" % i
        engine.delete(key)
        del expected[key]
        if i % 15 == 0:
            engine.commit()
    engine.commit()
    # More churn so the tombstones ride several merges.
    for i in range(60, 120):
        key = b"key%05d" % i
        if key in expected:
            value = b"final-" + bytes([i % 7]) * 50
            engine.put(key, value)
            expected[key] = value
    engine.commit()
    assert dict(engine.items()) == expected
    engine.close()
    reopened = LSMEngine.open(device, small_config("tiered"))
    assert dict(reopened.items()) == expected
    reopened.close()
