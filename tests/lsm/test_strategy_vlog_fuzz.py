"""Seeded hypothesis fuzz: strategy equivalence + vlog GC crash idempotence.

Two properties pin the PR-10 subsystem:

* **strategy equivalence** — one random operation stream must read back the
  identical key/value multiset under every compaction strategy × separation
  threshold, live and after reopen;
* **GC idempotence** — a crash (random per-block survival of unflushed
  writes) at a random boundary of a value-log workload that runs several GC
  passes recovers exactly the committed state, and recovering *again* from
  the recovered image changes nothing.

Set ``REPRO_FUZZ_SEED=<n>`` to replay one scenario (see ``tests/fuzz.py``).
"""

import random

from hypothesis import given

from repro.csd.device import CompressedBlockDevice
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.lsm.strategy import STRATEGIES
from tests.fuzz import fuzz_settings, report_seed, seed_strategy

THRESHOLDS = (None, 64)


def _config(strategy: str, threshold, **overrides) -> LSMConfig:
    options = dict(
        memtable_bytes=4 * 1024,
        log_blocks=512,
        log_flush_policy="commit",
        compaction_strategy=strategy,
        value_separation_threshold=threshold,
        vlog_segment_blocks=1,
        vlog_segments=8,
        vlog_gc_free_segments=2,
    )
    options.update(overrides)
    return LSMConfig(**options)


def _workload(seed: int, n_ops: int = 250):
    """A deterministic put/delete stream with values straddling the 64B
    separation threshold, plus the reference final state."""
    rng = random.Random(seed)
    stream = []
    reference = {}
    for _ in range(n_ops):
        k = b"key%04d" % rng.randrange(80)
        if rng.random() < 0.15 and reference:
            victim = rng.choice(sorted(reference))
            stream.append(("del", victim, b""))
            del reference[victim]
        else:
            v = rng.randbytes(rng.randrange(16, 220))
            stream.append(("put", k, v))
            reference[k] = v
    return stream, reference


@fuzz_settings(max_examples=4, deadline=None)
@given(seed=seed_strategy())
def test_strategy_threshold_equivalence(seed):
    stream, reference = _workload(seed)
    with report_seed(seed):
        for strategy in sorted(STRATEGIES):
            for threshold in THRESHOLDS:
                label = f"{strategy}/threshold={threshold}/seed={seed}"
                config = _config(strategy, threshold)
                device = CompressedBlockDevice(num_blocks=1 << 14)
                engine = LSMEngine(device, config)
                for index, (kind, k, v) in enumerate(stream):
                    if kind == "put":
                        engine.put(k, v)
                    else:
                        engine.delete(k)
                    if index % 16 == 15:
                        engine.commit()
                engine.commit()
                assert dict(engine.items()) == reference, label
                engine.close()
                reopened = LSMEngine.open(device, _config(strategy, threshold))
                assert dict(reopened.items()) == reference, label
                reopened.close()


@fuzz_settings(max_examples=6, deadline=None)
@given(seed=seed_strategy())
def test_vlog_gc_idempotent_after_crash_reopen(seed):
    rng = random.Random(seed)
    config = _config("leveled", 64)
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, config)
    committed = {}
    # Enough churn of large values that the tight 8x1-block value log runs
    # several GC passes before the crash point.
    crash_at = rng.randrange(60, 220)
    for _ in range(crash_at):
        k = b"key%04d" % rng.randrange(30)
        if rng.random() < 0.1 and committed:
            victim = rng.choice(sorted(committed))
            engine.delete(victim)
            del committed[victim]
        else:
            v = rng.randbytes(rng.randrange(80, 260))
            engine.put(k, v)
            committed[k] = v
        engine.commit()
    gc_before_crash = engine.vlog.stats.gc_passes
    # A few uncommitted ops that must NOT survive, then a torn crash.
    for _ in range(rng.randrange(0, 4)):
        engine.put(b"key%04d" % rng.randrange(30, 40), b"uncommitted" * 10)
    device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
    with report_seed(seed):
        recovered = LSMEngine.open(device, _config("leveled", 64))
        assert dict(recovered.items()) == committed, (
            f"crash at op {crash_at} (gc passes {gc_before_crash})"
        )
        recovered.close()
        # Idempotence: recovering again from the recovered image (which
        # re-ran the GC scrub) must reproduce the same state, and keep doing
        # so after further GC-driving churn.
        again = LSMEngine.open(device, _config("leveled", 64))
        assert dict(again.items()) == committed
        for i in range(40):
            k = b"key%04d" % rng.randrange(30)
            v = rng.randbytes(rng.randrange(80, 260))
            again.put(k, v)
            committed[k] = v
            again.commit()
        assert dict(again.items()) == committed
        again.close()
        final = LSMEngine.open(device, _config("leveled", 64))
        assert dict(final.items()) == committed
        final.close()
