"""Unit tests for level bookkeeping and compaction scheduling."""

import pytest

from repro.csd.device import BLOCK_SIZE
from repro.errors import CompactionError
from repro.lsm.sstable import SSTableMeta, SSTableReader
from repro.lsm.version import VersionSet


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


def fake_table(table_id, seq, lo, hi, nblocks=8):
    """A reader stub: only metadata matters for version bookkeeping."""
    meta = SSTableMeta(table_id, seq, 0, nblocks, hi - lo + 1, key(lo), key(hi))
    return SSTableReader(device=None, meta=meta, index=[], bloom=None)


def test_level_validation():
    with pytest.raises(CompactionError):
        VersionSet(max_levels=1)
    versions = VersionSet()
    with pytest.raises(CompactionError):
        versions.add_table(99, fake_table(1, 1, 0, 10))


def test_l0_allows_overlap_sorted_by_seq():
    versions = VersionSet()
    versions.add_table(0, fake_table(2, 20, 0, 100))
    versions.add_table(0, fake_table(1, 10, 50, 150))
    assert [t.meta.seq for t in versions.levels[0]] == [10, 20]


def test_deeper_levels_reject_overlap():
    versions = VersionSet()
    versions.add_table(1, fake_table(1, 1, 0, 50))
    with pytest.raises(CompactionError):
        versions.add_table(1, fake_table(2, 2, 50, 99))


def test_deeper_levels_sorted_by_min_key():
    versions = VersionSet()
    versions.add_table(1, fake_table(2, 2, 60, 99))
    versions.add_table(1, fake_table(1, 1, 0, 50))
    assert [t.meta.table_id for t in versions.levels[1]] == [1, 2]


def test_remove_tables():
    versions = VersionSet()
    t = fake_table(1, 1, 0, 50)
    versions.add_table(1, t)
    versions.remove_tables(1, [t])
    assert versions.levels[1] == []
    with pytest.raises(CompactionError):
        versions.remove_tables(1, [t])


def test_level_bytes():
    versions = VersionSet()
    versions.add_table(1, fake_table(1, 1, 0, 50, nblocks=4))
    assert versions.level_bytes(1) == 4 * BLOCK_SIZE


def test_overlapping_query():
    versions = VersionSet()
    versions.add_table(1, fake_table(1, 1, 0, 10))
    versions.add_table(1, fake_table(2, 2, 20, 30))
    versions.add_table(1, fake_table(3, 3, 40, 50))
    hits = versions.overlapping(1, key(25), key(45))
    assert [t.meta.table_id for t in hits] == [2, 3]


def test_tables_for_get_order():
    """L0 newest first, then one table per deeper level."""
    versions = VersionSet()
    versions.add_table(0, fake_table(1, 10, 0, 100))
    versions.add_table(0, fake_table(2, 20, 0, 100))
    versions.add_table(1, fake_table(3, 5, 0, 50))
    versions.add_table(2, fake_table(4, 1, 0, 50))
    probes = versions.tables_for_get(key(25))
    assert [t.meta.table_id for t in probes] == [2, 1, 3, 4]


def test_tables_for_get_range_filter():
    versions = VersionSet()
    versions.add_table(1, fake_table(1, 1, 0, 10))
    assert versions.tables_for_get(key(99)) == []


def test_pick_compaction_l0_trigger():
    versions = VersionSet()
    for i in range(4):
        versions.add_table(0, fake_table(i, i + 1, 0, 100))
    overlap = fake_table(99, 1, 50, 60)
    versions.add_table(1, overlap)
    job = versions.pick_compaction(l0_trigger=4, level_base_bytes=1 << 30, size_ratio=10)
    assert job is not None
    assert job.level == 0
    assert len(job.inputs) == 4
    assert job.overlaps == [overlap]


def test_pick_compaction_none_when_healthy():
    versions = VersionSet()
    versions.add_table(0, fake_table(1, 1, 0, 100))
    assert versions.pick_compaction(4, 1 << 30, 10) is None


def test_pick_compaction_size_trigger():
    versions = VersionSet()
    # Level 1 holds 3 tables of 8 blocks; target is 2 blocks worth of bytes.
    for i in range(3):
        versions.add_table(1, fake_table(i, i + 1, i * 100, i * 100 + 50))
    job = versions.pick_compaction(4, 2 * BLOCK_SIZE, 10)
    assert job is not None
    assert job.level == 1
    assert len(job.inputs) == 1


def test_round_robin_victim_rotates():
    versions = VersionSet()
    for i in range(3):
        versions.add_table(1, fake_table(i, i + 1, i * 100, i * 100 + 50))
    seen = []
    for _ in range(3):
        job = versions.pick_compaction(4, 1, 10)
        seen.append(job.inputs[0].meta.table_id)
    assert sorted(seen) == [0, 1, 2]  # every table picked once per cycle


def test_deepest_nonempty_level():
    versions = VersionSet()
    assert versions.deepest_nonempty_level() == 0
    versions.add_table(3, fake_table(1, 1, 0, 10))
    assert versions.deepest_nonempty_level() == 3
