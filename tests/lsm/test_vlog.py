"""Unit + engine-integration tests for WAL-time key-value separation."""

import pytest

from repro.csd.device import CompressedBlockDevice
from repro.errors import ConfigError, LsmError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.lsm.vlog import VREF_SIZE, ValueLog, ValueRef


def vlog_config(**overrides) -> LSMConfig:
    options = dict(
        memtable_bytes=4 * 1024,
        log_blocks=512,
        log_flush_policy="commit",
        value_separation_threshold=100,
        vlog_segment_blocks=2,
        vlog_segments=6,
        vlog_gc_free_segments=2,
    )
    options.update(overrides)
    return LSMConfig(**options)


def big(i: int, length: int = 300) -> bytes:
    return (b"big%05d-" % i) * (length // 9 + 1)


# ---------------------------------------------------------------- ValueRef


def test_value_ref_round_trip():
    ref = ValueRef.make(12345, 678)
    assert len(ref) == VREF_SIZE
    parsed = ValueRef.from_wire(bytes(ref))
    assert parsed.addr == 12345
    assert parsed.length == 678


def test_value_ref_rejects_garbage():
    with pytest.raises(LsmError):
        ValueRef.from_wire(b"short")
    with pytest.raises(LsmError):
        ValueRef.from_wire(bytes(VREF_SIZE))  # zero magic


# ---------------------------------------------------------- ValueLog plain


def make_vlog(segment_blocks: int = 2, segments: int = 6):
    device = CompressedBlockDevice(num_blocks=1 << 12)
    vlog = ValueLog(device, start_block=16, segment_blocks=segment_blocks,
                    segments=segments)
    return device, vlog


def test_append_read_round_trip():
    _, vlog = make_vlog()
    refs = {}
    for i in range(10):
        key = b"k%03d" % i
        refs[key] = vlog.append(key, big(i, 200))
    for i, (key, ref) in enumerate(sorted(refs.items())):
        assert vlog.read(key, ref) == big(i, 200)
        assert vlog.validate_record(key, ref)


def test_corrupt_record_fails_validation():
    device, vlog = make_vlog()
    key = b"victim"
    ref = vlog.append(key, big(1, 200))
    device.flush()
    lba = vlog.slot_lba(vlog.slot_of(ref))
    raw = bytearray(device.read_blocks(lba, 1))
    raw[40] ^= 0xFF  # flip a payload byte
    device.write_block(lba, bytes(raw))
    device.flush()
    # The in-memory head image still has the good bytes; reload from device.
    state = vlog.encode_state()
    vlog.restore_state(state)
    assert not vlog.validate_record(key, ref)
    with pytest.raises(LsmError):
        vlog.read(key, ref)


def test_head_rolls_and_reserve():
    _, vlog = make_vlog(segment_blocks=1, segments=4)
    # Fill until the 2-free-segment GC reserve blocks further rolls.
    appended = 0
    while vlog.has_room(8, 900):
        vlog.append(b"k%06d" % appended, b"x" * 900)
        appended += 1
    assert appended > 0
    assert vlog.free_segments() <= 2
    assert vlog.oldest_sealed_slot() is not None


def test_state_round_trip_and_geometry_check():
    device, vlog = make_vlog()
    refs = [(b"k%03d" % i, vlog.append(b"k%03d" % i, big(i))) for i in range(8)]
    device.flush()
    blob = vlog.encode_state()
    clone = ValueLog(device, start_block=16, segment_blocks=2, segments=6)
    clone.restore_state(blob)
    for i, (key, ref) in enumerate(refs):
        assert clone.read(key, ref) == big(i)
    mismatched = ValueLog(device, start_block=16, segment_blocks=4, segments=6)
    with pytest.raises(LsmError):
        mismatched.restore_state(blob)


# ------------------------------------------------------- engine integration


def test_separation_threshold_routes_values():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, vlog_config())
    engine.put(b"small", b"x" * 40)     # below the threshold: inline
    engine.put(b"large", b"y" * 300)    # separated
    engine.commit()
    assert engine.vlog.stats.appended_records == 1
    assert engine.get(b"small") == b"x" * 40
    assert engine.get(b"large") == b"y" * 300
    assert dict(engine.items())[b"large"] == b"y" * 300
    engine.close()


def test_separated_values_survive_reopen():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, vlog_config())
    expected = {}
    for i in range(60):
        key = b"key%04d" % i
        value = big(i, 250) if i % 2 else b"s%d" % i
        engine.put(key, value)
        expected[key] = value
        if i % 8 == 7:
            engine.commit()
    engine.commit()
    engine.close()
    reopened = LSMEngine.open(device, vlog_config())
    assert dict(reopened.items()) == expected
    assert reopened.get(b"key0031") == expected[b"key0031"]
    reopened.close()


def test_gc_reclaims_segments_under_churn():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, vlog_config(vlog_segment_blocks=1))
    expected = {}
    for generation in range(8):
        for i in range(20):
            key = b"key%04d" % i
            value = (b"g%d-" % generation) + big(i, 220)
            engine.put(key, value)
            expected[key] = value
            if i % 5 == 4:
                engine.commit()
        engine.commit()
    assert engine.vlog.stats.gc_passes > 0
    assert engine.vlog.stats.segments_trimmed > 0
    assert dict(engine.items()) == expected
    engine.close()
    reopened = LSMEngine.open(device, vlog_config(vlog_segment_blocks=1))
    assert dict(reopened.items()) == expected
    reopened.close()


def test_vlog_occupancy_is_integer_exact():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, vlog_config())
    for i in range(30):
        engine.put(b"key%04d" % i, big(i, 250))
        if i % 8 == 7:
            engine.commit()
    engine.commit()
    occ = engine.vlog_occupancy()
    for field, value in occ.items():
        assert isinstance(value, int), field
    assert occ["live_records"] == 30
    assert 0 < occ["live_bytes"] <= occ["data_bytes"]
    assert occ["capacity_bytes"] >= occ["data_bytes"]
    engine.close()


def test_occupancy_none_without_separation():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, LSMConfig(memtable_bytes=4 * 1024))
    assert engine.vlog_occupancy() is None
    engine.close()


def test_reopen_with_mismatched_config_raises():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, vlog_config())
    engine.put(b"large", b"y" * 300)
    engine.commit()
    engine.close()
    with pytest.raises(ConfigError):
        LSMEngine.open(device, LSMConfig(memtable_bytes=4 * 1024,
                                         log_blocks=512,
                                         log_flush_policy="commit"))
    with pytest.raises(ConfigError):
        LSMEngine.open(device, vlog_config(value_separation_threshold=999))


def test_vlog_traffic_lands_in_log_lane():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    engine = LSMEngine(device, vlog_config())
    engine.put(b"large", b"y" * 400)
    engine.commit()
    traffic = engine.traffic_snapshot()
    assert engine.vlog.stats.logical_bytes > 0
    assert traffic.log_logical >= engine.vlog.stats.logical_bytes
    engine.close()


def test_group_atomic_composes_with_separation():
    device = CompressedBlockDevice(num_blocks=1 << 14)
    config = vlog_config(group_atomic=True, vlog_segment_blocks=1,
                         vlog_segments=8)
    engine = LSMEngine(device, config)
    expected = {}
    for generation in range(6):
        for i in range(16):
            key = b"key%04d" % i
            value = (b"g%d-" % generation) + big(i, 200)
            engine.put(key, value)
            expected[key] = value
            if i % 4 == 3:
                engine.commit()
        engine.commit()
    assert dict(engine.items()) == expected
    assert engine.vlog.stats.gc_passes > 0
    engine.close()
    reopened = LSMEngine.open(device, config)
    assert dict(reopened.items()) == expected
    reopened.close()
