"""Unit tests for WA accounting."""

import pytest

from repro.metrics.counters import TrafficSnapshot, WaReport, compute_wa


def snapshot(**kwargs):
    base = dict(
        user_bytes=1000,
        log_logical=2000, log_physical=500,
        page_logical=8000, page_physical=3000,
        extra_logical=4000, extra_physical=100,
    )
    base.update(kwargs)
    return TrafficSnapshot(**base)


def test_totals():
    snap = snapshot()
    assert snap.total_logical == 14_000
    assert snap.total_physical == 3600


def test_delta_fieldwise():
    early = snapshot()
    late = snapshot(user_bytes=1500, log_physical=800)
    delta = late.delta(early)
    assert delta.user_bytes == 500
    assert delta.log_physical == 300
    assert delta.page_physical == 0


def test_compute_wa_decomposition():
    report = compute_wa(snapshot())
    assert report.wa_log == 0.5
    assert report.wa_pg == 3.0
    assert report.wa_e == pytest.approx(0.1)
    assert report.wa_total == pytest.approx(3.6)
    assert report.wa_total == pytest.approx(report.wa_log + report.wa_pg + report.wa_e)


def test_compute_wa_logical_counterparts():
    report = compute_wa(snapshot())
    assert report.wa_total_logical == 14.0
    assert report.wa_log_logical == 2.0


def test_compute_wa_no_user_bytes():
    report = compute_wa(TrafficSnapshot())
    assert report.wa_total == 0.0
    assert report.user_bytes == 0


def test_str_formatting():
    text = str(compute_wa(snapshot()))
    assert "WA=3.60" in text
