"""Unit tests for WA accounting."""

import pytest

from repro.metrics.counters import TrafficSnapshot, compute_wa


def snapshot(**kwargs):
    base = dict(
        user_bytes=1000,
        log_logical=2000, log_physical=500,
        page_logical=8000, page_physical=3000,
        extra_logical=4000, extra_physical=100,
    )
    base.update(kwargs)
    return TrafficSnapshot(**base)


def test_totals():
    snap = snapshot()
    assert snap.total_logical == 14_000
    assert snap.total_physical == 3600


def test_delta_fieldwise():
    early = snapshot()
    late = snapshot(user_bytes=1500, log_physical=800)
    delta = late.delta(early)
    assert delta.user_bytes == 500
    assert delta.log_physical == 300
    assert delta.page_physical == 0


def test_compute_wa_decomposition():
    report = compute_wa(snapshot())
    assert report.wa_log == 0.5
    assert report.wa_pg == 3.0
    assert report.wa_e == pytest.approx(0.1)
    assert report.wa_total == pytest.approx(3.6)
    assert report.wa_total == pytest.approx(report.wa_log + report.wa_pg + report.wa_e)


def test_compute_wa_logical_counterparts():
    report = compute_wa(snapshot())
    assert report.wa_total_logical == 14.0
    assert report.wa_log_logical == 2.0


def test_compute_wa_no_user_bytes():
    report = compute_wa(TrafficSnapshot())
    assert report.wa_total == 0.0
    assert report.user_bytes == 0


def test_str_formatting():
    text = str(compute_wa(snapshot()))
    assert "WA=3.60" in text


def test_delta_covers_every_field():
    """delta() must subtract every dataclass field — including fields added
    later (operations), so the windowed WA series never silently drops one."""
    early = snapshot(operations=10)
    late = snapshot(operations=25, extra_logical=4400, user_bytes=1600)
    delta = late.delta(early)
    assert delta.operations == 15
    assert delta.extra_logical == 400
    assert delta.user_bytes == 600
    # Unchanged fields are exactly zero.
    assert delta.log_logical == delta.page_logical == delta.log_physical == 0


def test_delta_leaves_operands_untouched():
    early = snapshot()
    late = snapshot(user_bytes=2000)
    late.delta(early)
    assert early.user_bytes == 1000 and late.user_bytes == 2000


def test_deltas_compose_exactly():
    """(c-b) + (b-a) == (c-a) field by field — the invariant that makes the
    per-window series sum to end-of-run totals."""
    a = snapshot()
    b = snapshot(user_bytes=1700, page_physical=3600)
    c = snapshot(user_bytes=2400, page_physical=4100, log_physical=900)
    ab, bc, ac = b.delta(a), c.delta(b), c.delta(a)
    recombined = TrafficSnapshot(
        **{f: getattr(ab, f) + getattr(bc, f)
           for f in ("user_bytes", "log_logical", "log_physical",
                     "page_logical", "page_physical", "extra_logical",
                     "extra_physical", "operations")})
    assert recombined == ac


def test_compute_wa_decomposition_sums_for_arbitrary_traffic():
    snap = snapshot(log_physical=123, page_physical=456, extra_physical=789)
    report = compute_wa(snap)
    assert report.wa_total == pytest.approx(report.wa_log + report.wa_pg + report.wa_e)
    assert report.wa_total_logical == pytest.approx(
        report.wa_log_logical + report.wa_pg_logical + report.wa_e_logical)


def test_compute_wa_on_delta_matches_manual_ratio():
    early = snapshot()
    late = snapshot(user_bytes=3000, page_physical=9000)
    report = compute_wa(late.delta(early))
    assert report.user_bytes == 2000
    assert report.wa_pg == pytest.approx(6000 / 2000)


def test_wa_report_zero_traffic_all_zero():
    report = compute_wa(TrafficSnapshot(log_physical=500))  # no user bytes
    assert report.wa_total == report.wa_log == 0.0
    assert report.user_bytes == 0
