"""Shared fixtures for the observability test suite."""

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Never leak the process-global tracer between tests.

    The tracer is deliberately global (that is what makes the hook points a
    single attribute test), so every test in this package gets a guaranteed
    uninstall after it runs, pass or fail.
    """
    trace.uninstall_tracer()
    yield
    trace.uninstall_tracer()
