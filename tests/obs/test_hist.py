"""Property tests for the log-bucketed histogram and the windowed series."""

import json
import math
import random

import pytest
from hypothesis import given

from repro.obs.hist import LatencyHistogram, WindowedSeries

from tests.fuzz import fuzz_settings, report_seed, seed_strategy


def _latency_stream(rng: random.Random, n: int) -> list:
    """Latencies spanning the realistic sub-µs .. seconds dynamic range."""
    return [rng.uniform(0.0, 10.0 ** rng.randrange(-7, 1)) for _ in range(n)]


# ----------------------------------------------------------- bucket basics


def test_small_values_are_exact():
    hist = LatencyHistogram(min_unit=1.0, sub_bits=7)
    for value in range(1 << 7):
        assert hist.value_at(hist._index(value)) == value


def test_relative_error_bound_exhaustive():
    hist = LatencyHistogram(min_unit=1.0, sub_bits=4)
    for units in range(1, 1 << 14):
        approx = hist.value_at(hist._index(units))
        assert abs(approx - units) <= units * hist.relative_error


def test_record_rejects_bad_inputs():
    hist = LatencyHistogram()
    with pytest.raises(ValueError):
        hist.record(-1e-9)
    with pytest.raises(ValueError):
        hist.record(1e-6, count=0)
    with pytest.raises(ValueError):
        LatencyHistogram(min_unit=0.0)
    with pytest.raises(ValueError):
        LatencyHistogram(sub_bits=0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_empty_histogram():
    hist = LatencyHistogram()
    assert hist.n == 0
    assert hist.mean == 0.0
    assert hist.quantile(0.5) == 0.0
    assert hist.summary() == {
        "n": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}


def test_mean_min_max_are_exact():
    hist = LatencyHistogram()
    hist.record(1e-3)
    hist.record(3e-3, count=3)
    assert hist.n == 4
    assert hist.mean == pytest.approx(2.5e-3)
    assert hist.min_value == 1e-3
    assert hist.max_value == 3e-3


# ------------------------------------------------------------- properties


@fuzz_settings(max_examples=40, deadline=None)
@given(seed=seed_strategy())
def test_property_merge_equals_single_stream(seed):
    """merge(h1, h2) must equal the histogram of the concatenated stream —
    bucket for bucket, so every quantile matches exactly too."""
    rng = random.Random(seed)
    values = _latency_stream(rng, rng.randrange(1, 400))
    split = rng.randrange(len(values) + 1)
    h1, h2, whole = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for value in values[:split]:
        h1.record(value)
    for value in values[split:]:
        h2.record(value)
    for value in values:
        whole.record(value)
    h1.merge(h2)
    with report_seed(seed):
        # Buckets merge exactly; `total` is a float sum, so only approx.
        assert h1.counts == whole.counts
        assert h1.n == whole.n
        assert h1.min_value == whole.min_value
        assert h1.max_value == whole.max_value
        assert h1.total == pytest.approx(whole.total)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert h1.quantile(q) == whole.quantile(q)


@fuzz_settings(max_examples=40, deadline=None)
@given(seed=seed_strategy())
def test_property_quantiles_within_resolution(seed):
    """Estimated quantiles stay within the documented relative error of the
    true (sorted-stream) quantiles, up to the min_unit quantisation floor."""
    rng = random.Random(seed)
    values = _latency_stream(rng, rng.randrange(1, 300))
    hist = LatencyHistogram()
    for value in values:
        hist.record(value)
    ordered = sorted(values)
    with report_seed(seed):
        for q in (0.01, 0.5, 0.9, 0.99, 1.0):
            # Same rank definition as LatencyHistogram.quantile.
            rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
            true = ordered[rank - 1]
            estimate = hist.quantile(q)
            assert abs(estimate - true) <= true * hist.relative_error + 2 * hist.min_unit


@fuzz_settings(max_examples=40, deadline=None)
@given(seed=seed_strategy())
def test_property_serialisation_round_trips(seed):
    rng = random.Random(seed)
    hist = LatencyHistogram()
    for value in _latency_stream(rng, rng.randrange(0, 200)):
        hist.record(value)
    wire = json.loads(json.dumps(hist.to_dict()))
    with report_seed(seed):
        assert LatencyHistogram.from_dict(wire) == hist


def test_merge_rejects_mismatched_parameters():
    with pytest.raises(ValueError):
        LatencyHistogram(sub_bits=7).merge(LatencyHistogram(sub_bits=8))
    with pytest.raises(ValueError):
        LatencyHistogram(min_unit=1e-9).merge(LatencyHistogram(min_unit=1e-6))


def test_merge_tracks_min_max_from_both_sides():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.record(5e-6)
    b.record(1e-6)
    b.record(9e-6)
    a.merge(b)
    assert a.min_value == 1e-6
    assert a.max_value == 9e-6
    assert a.n == 3


# --------------------------------------------------------- windowed series


def test_windowed_series_exact_sums_with_idle_gaps():
    closed = []
    series = WindowedSeries(1.0, on_window=closed.append)
    series.sample(0.0, {"x": 100})
    series.sample(0.4, {"x": 130})
    series.sample(0.9, {"x": 150})
    # Idle gap: nothing lands between t=1 and t=3.
    series.sample(3.2, {"x": 160})
    series.finish(3.5, {"x": 200})
    assert [w["start"] for w in series.windows] == [0.0, 1.0, 2.0, 3.0]
    # The delta spanning the idle gap lands in the window containing its
    # sample time (t=3.2); the skipped windows are emitted as zero rows.
    assert [w["x"] for w in series.windows] == [50, 0, 0, 50]
    assert series.totals() == {"x": 100}  # == last - first exactly
    assert closed == series.windows


def test_windowed_series_boundary_sample_lands_in_next_window():
    series = WindowedSeries(1.0)
    series.sample(0.0, {"x": 0})
    series.sample(1.0, {"x": 7})  # exactly on the boundary
    series.finish(1.0, {"x": 7})
    assert [w["x"] for w in series.windows] == [0, 7]


def test_windowed_series_finish_is_idempotent_and_guards_sampling():
    series = WindowedSeries(0.5)
    series.finish(1.0, {"x": 1})  # finish before any sample: no-op
    assert series.windows == []
    series.sample(0.0, {"x": 1})
    series.finish(0.2, {"x": 4})
    assert series.totals() == {"x": 3}
    series.finish(0.9, {"x": 9})  # already finished: no-op
    assert series.totals() == {"x": 3}
    with pytest.raises(ValueError):
        series.sample(1.0, {"x": 10})


def test_windowed_series_rejects_bad_width():
    with pytest.raises(ValueError):
        WindowedSeries(0.0)


@fuzz_settings(max_examples=40, deadline=None)
@given(seed=seed_strategy())
def test_property_windows_sum_to_totals_exactly(seed):
    """Integer-exact invariant: window sums == final - first sample."""
    rng = random.Random(seed)
    series = WindowedSeries(rng.choice([0.1, 0.5, 1.0, 2.0]))
    t = 0.0
    cum = {"a": 0, "b": 1000}
    series.sample(t, cum)  # the baseline sample defines the origin
    first = dict(cum)
    for _ in range(rng.randrange(2, 120)):
        t += rng.uniform(0.0, 1.5)
        cum["a"] += rng.randrange(0, 10_000)
        cum["b"] += rng.randrange(0, 3)
        series.sample(t, cum)
    series.finish(t, cum)
    with report_seed(seed):
        assert series.totals() == {k: cum[k] - first[k] for k in cum}
        for window in series.windows:
            assert window["end"] >= window["start"]
