"""Tests for the MetricsHub: per-op latency + windowed WA integration."""

import json

import pytest

from repro.bench.harness import ExperimentSpec, run_wa_experiment
from repro.csd.stats import DeviceStats
from repro.obs.metrics import WINDOW_FIELDS, MetricsHub


def _small_spec(**kwargs):
    base = dict(system="bminus", n_records=1500, steady_ops=800)
    base.update(kwargs)
    return ExperimentSpec(**base)


def test_record_op_fills_per_kind_histograms():
    hub = MetricsHub()
    hub.record_op("put", DeviceStats(
        logical_bytes_written=4096, physical_bytes_written=2048, write_ios=1))
    hub.record_op("put", DeviceStats())
    hub.record_op("read", DeviceStats(
        logical_bytes_read=4096, physical_bytes_read=4096, read_ios=1))
    assert hub.op_latency["put"].n == 2
    assert hub.op_latency["read"].n == 1
    # Even a no-I/O op costs the host op base.
    assert hub.op_latency["put"].min_value == hub.host_model.op_base


def test_windows_sum_exactly_to_phase_traffic():
    """The tentpole invariant: the windowed series sums to the end-of-run
    totals exactly, field by field, for a real experiment."""
    hub = MetricsHub(window_seconds=0.05)
    result = run_wa_experiment(_small_spec(), hub=hub)
    totals = hub.series.totals()
    expected = {
        "user_bytes": result.populate.traffic.user_bytes
        + result.steady.traffic.user_bytes,
        "log_physical": result.populate.traffic.log_physical
        + result.steady.traffic.log_physical,
        "page_physical": result.populate.traffic.page_physical
        + result.steady.traffic.page_physical,
        "extra_physical": result.populate.traffic.extra_physical
        + result.steady.traffic.extra_physical,
        "total_logical": result.populate.traffic.total_logical
        + result.steady.traffic.total_logical,
        "operations": result.populate.traffic.operations
        + result.steady.traffic.operations,
        "write_ios": result.populate.device.write_ios
        + result.steady.device.write_ios,
        "read_ios": result.populate.device.read_ios
        + result.steady.device.read_ios,
        "flush_ios": result.populate.device.flush_ios
        + result.steady.device.flush_ios,
    }
    assert set(totals) == set(WINDOW_FIELDS)
    assert totals == expected
    # And the per-op histograms saw every operation.
    assert sum(h.n for h in hub.op_latency.values()) == (
        result.populate.ops + result.steady.ops)


def test_result_obs_summary_attached():
    hub = MetricsHub(window_seconds=0.1)
    result = run_wa_experiment(_small_spec(), hub=hub)
    obs = result.obs
    assert obs is not None
    assert obs["window_seconds"] == 0.1
    assert "put" in obs["op_latency"]
    assert obs["wa_windows"], "expected at least one window"
    json.dumps(obs)  # must be JSON-safe (survives detach/pickle)


def test_no_hub_means_no_obs():
    assert run_wa_experiment(_small_spec()).obs is None


def test_wa_windows_decomposition_consistent():
    hub = MetricsHub(window_seconds=0.05)
    run_wa_experiment(_small_spec(), hub=hub)
    for window in hub.wa_windows():
        if window["user_bytes"] > 0:
            assert window["wa_total"] == pytest.approx(
                window["wa_log"] + window["wa_pg"] + window["wa_e"])
        else:
            assert window["wa_total"] == 0.0


def test_on_window_streams_in_order():
    seen = []
    hub = MetricsHub(window_seconds=0.05, on_window=seen.append)
    run_wa_experiment(_small_spec(), hub=hub)
    assert seen == hub.series.windows
    starts = [w["start"] for w in seen]
    assert starts == sorted(starts)


def test_merge_and_serialisation_round_trip():
    h1 = MetricsHub(window_seconds=0.05)
    h2 = MetricsHub(window_seconds=0.05)
    run_wa_experiment(_small_spec(), hub=h1)
    run_wa_experiment(_small_spec(seed=7), hub=h2)
    n1 = {kind: hist.n for kind, hist in h1.op_latency.items()}
    windows1 = len(h1.series.windows)
    h1.merge(h2)
    for kind, hist in h2.op_latency.items():
        assert h1.op_latency[kind].n == n1.get(kind, 0) + hist.n
    assert len(h1.series.windows) == windows1 + len(h2.series.windows)

    wire = json.loads(json.dumps(h1.to_dict()))
    back = MetricsHub.from_dict(wire)
    assert back.op_latency == h1.op_latency
    assert back.series.windows == h1.series.windows
    assert back.series.window == h1.series.window
