"""MetricsHub serving-layer extensions: batch recording, service series.

The service surface is strictly additive — a hub that never sees a service
sample must summarise, merge, and serialise exactly as before (backward
compatibility with pre-serving payloads is part of the contract).
"""

from repro.csd.device import DeviceStats
from repro.obs.metrics import MetricsHub


def _delta(reads=0, writes=0):
    return DeviceStats(logical_bytes_written=writes * 4096,
                       physical_bytes_written=writes * 2048,
                       blocks_written=writes, blocks_read=reads)


def _counters(completed, shed=0):
    return {"completed": completed, "shed_overload": shed}


def test_record_batch_charges_even_shares_into_op_histograms():
    hub = MetricsHub(window_seconds=0.05)
    hub.record_batch("put", 4, _delta(writes=8))
    hub.record_op("put", _delta(writes=8))
    summary = hub.summary()["op_latency"]["put"]
    assert summary["n"] == 5
    # Each batch op is charged 1/4 of the batch's busy time, so the lone
    # op that paid for 8 writes alone dominates the distribution.
    assert summary["max"] > summary["p50"]


def test_service_series_windows_deltas_and_queue_gauge():
    hub = MetricsHub(window_seconds=0.1)
    hub.sample_service(0.0, _counters(0), queue_depth=0)
    hub.sample_service(0.05, _counters(3), queue_depth=4)
    hub.sample_service(0.15, _counters(9, shed=2), queue_depth=8)
    hub.finish_service(0.2, _counters(10, shed=2))
    obs = hub.summary()["service"]
    assert obs["totals"]["completed"] == 10
    assert obs["totals"]["shed_overload"] == 2
    assert [w["completed"] for w in obs["windows"]] == [3, 6, 1]
    assert obs["queue_depth"]["n"] == 3
    assert obs["queue_depth"]["max"] >= 8
    assert "p999" in obs["queue_depth"]


def test_hub_without_service_samples_keeps_the_legacy_summary():
    hub = MetricsHub(window_seconds=0.05)
    hub.record_op("put", _delta(writes=1))
    obs = hub.summary()
    assert "service" not in obs
    payload = hub.to_dict()
    assert "service_series" not in payload
    # A pre-serving payload round-trips without the new keys.
    restored = MetricsHub.from_dict(payload)
    assert restored.summary() == obs


def test_service_series_round_trips_through_serialisation():
    hub = MetricsHub(window_seconds=0.1)
    hub.sample_service(0.0, _counters(0), queue_depth=1)
    hub.sample_service(0.25, _counters(7, shed=1), queue_depth=5)
    hub.finish_service(0.3, _counters(8, shed=1))
    restored = MetricsHub.from_dict(hub.to_dict())
    assert restored.summary() == hub.summary()


def test_merge_folds_service_series_and_queue_histogram():
    left = MetricsHub(window_seconds=0.1)
    left.sample_service(0.0, _counters(0), queue_depth=2)
    left.finish_service(0.1, _counters(4))
    right = MetricsHub(window_seconds=0.1)
    right.sample_service(0.0, _counters(0), queue_depth=6)
    right.finish_service(0.1, _counters(3, shed=1))
    merged = left.merge(right)
    obs = merged.summary()["service"]
    assert obs["totals"]["completed"] == 7
    assert obs["totals"]["shed_overload"] == 1
    assert obs["queue_depth"]["n"] == 2
    # Merging into a service-free hub lazily grows the service side.
    plain = MetricsHub(window_seconds=0.1)
    grown = plain.merge(right)
    assert grown.summary()["service"]["totals"]["completed"] == 3
