"""Tests for the structured event tracer and its hook points."""

import json
import os
import pathlib

import pytest

from repro.core.bminus import BMinusConfig, BMinusTree
from repro.csd.compression import NullCompressor
from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.metrics.faults import FaultStats
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    Tracer,
    configure_from_env,
    install_tracer,
    maybe_instant,
    maybe_span,
    tracing_enabled,
    uninstall_tracer,
    validate_chrome_trace,
)
from repro.sim.clock import SimClock

GOLDEN = pathlib.Path(__file__).resolve().parents[1] / "golden" / "trace_small.json"


# ------------------------------------------------------------------- tracer


def test_instants_spans_and_counters_are_recorded():
    tracer = Tracer()
    tracer.instant("hello", "cat", a=1)
    with tracer.span("work", "cat", b=2) as args:
        tracer.instant("inside", "cat")
        args["extra"] = "late"
    tracer.counter("gauge", "cat", value=7)
    names = [event.name for event in tracer.events]
    # The span is appended at exit, after the instant it contains.
    assert names == ["hello", "inside", "work", "gauge"]
    span = tracer.events[2]
    assert span.ph == "X"
    assert span.args == {"b": 2, "extra": "late"}
    assert span.dur > 0
    assert tracer.emitted == 4 and tracer.dropped == 0


def test_timestamps_strictly_monotone_without_clock():
    tracer = Tracer()
    for i in range(10):
        tracer.instant(f"e{i}")
    stamps = [event.ts for event in tracer.events]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)


def test_timestamps_follow_attached_clock():
    tracer = Tracer()
    clock = SimClock()
    tracer.attach_clock(clock)
    tracer.instant("before")
    clock.advance(1.5)
    tracer.instant("after")
    before, after = tracer.events
    assert after.ts - before.ts == pytest.approx(1.5e6, rel=1e-9)


def test_span_ts_is_entry_time_and_covers_children():
    tracer = Tracer()
    clock = SimClock()
    tracer.attach_clock(clock)
    with tracer.span("outer"):
        clock.advance(0.25)
        tracer.instant("child")
    child, outer = tracer.events
    assert outer.ts < child.ts < outer.ts + outer.dur


def test_ring_buffer_drops_oldest():
    tracer = Tracer(capacity=4)
    for i in range(10):
        tracer.instant(f"e{i}")
    assert [event.name for event in tracer.events] == ["e6", "e7", "e8", "e9"]
    assert tracer.emitted == 10
    assert tracer.dropped == 6


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_export_chrome_validates_and_round_trips(tmp_path):
    tracer = Tracer()
    tracer.instant("i", "c", k="v")
    with tracer.span("s", "c", n=1):
        pass
    tracer.counter("g", "c", v=3.5)
    doc = tracer.to_chrome()
    assert validate_chrome_trace(doc) == []
    path = tmp_path / "trace.json"
    tracer.export_chrome(str(path))
    assert json.loads(path.read_text()) == json.loads(json.dumps(doc))
    assert doc["otherData"]["emitted"] == 3


def test_validator_flags_bad_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    bad_events = [
        {"cat": "c", "ph": "i", "ts": 0, "pid": 1, "tid": 1, "s": "t", "args": {}},
        {"name": "n", "cat": "c", "ph": "Z", "ts": 0, "pid": 1, "tid": 1, "args": {}},
        {"name": "n", "cat": "c", "ph": "i", "ts": -1, "pid": 1, "tid": 1, "s": "t",
         "args": {}},
        {"name": "n", "cat": "c", "ph": "X", "ts": 0, "pid": 1, "tid": 1, "args": {}},
        {"name": "n", "cat": "c", "ph": "i", "ts": 0, "pid": 1, "tid": 1, "s": "t",
         "args": {"k": [1, 2]}},
        "not-an-object",
    ]
    for event in bad_events:
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert problems, event


def test_format_timeline_orders_and_limits():
    tracer = Tracer()
    with tracer.span("outer", "c"):
        tracer.instant("child", "c", k=1)
    text = tracer.format_timeline()
    lines = text.splitlines()
    assert lines[0].startswith("# 2 events emitted")
    # Timeline is timestamp-ordered: the span's entry ts precedes the child.
    assert "outer" in lines[1] and "child" in lines[2]
    assert "k=1" in lines[2]
    limited = tracer.format_timeline(limit=1)
    assert "child" in limited and "outer" not in limited.splitlines()[1]


# ----------------------------------------------------------- global install


def test_install_uninstall_cycle():
    assert not tracing_enabled()
    tracer = install_tracer(capacity=16)
    assert tracing_enabled()
    assert uninstall_tracer() is tracer
    assert not tracing_enabled()
    assert uninstall_tracer() is None


def test_maybe_helpers_are_noops_when_disabled():
    maybe_instant("nothing", "c", k=1)
    with maybe_span("nothing", "c") as args:
        assert args is None
    assert not tracing_enabled()


def test_maybe_helpers_record_when_enabled():
    tracer = install_tracer()
    maybe_instant("i", "c", k=1)
    with maybe_span("s", "c") as args:
        args["late"] = True
    assert [event.name for event in tracer.events] == ["i", "s"]
    assert tracer.events[1].args == {"late": True}


@pytest.mark.parametrize("raw", ["", "0", "off", "false", "no"])
def test_configure_from_env_disabled(monkeypatch, raw):
    monkeypatch.setenv("REPRO_TRACE", raw)
    assert configure_from_env() is None
    assert not tracing_enabled()


@pytest.mark.parametrize("raw", ["1", "on", "true", "yes"])
def test_configure_from_env_enabled(monkeypatch, raw):
    monkeypatch.setenv("REPRO_TRACE", raw)
    tracer = configure_from_env()
    assert tracer is not None
    assert tracer.capacity == DEFAULT_CAPACITY


def test_configure_from_env_capacity(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1234")
    assert configure_from_env().capacity == 1234


def test_configure_from_env_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "sometimes")
    with pytest.raises(ValueError):
        configure_from_env()


# ------------------------------------------------------------- hook points


def test_device_hooks_emit_events():
    tracer = install_tracer()
    device = CompressedBlockDevice(num_blocks=64)
    device.write_block(3, bytes(BLOCK_SIZE))
    device.flush()
    device.read_block(3)
    device.trim(3)
    names = [event.name for event in tracer.events]
    assert names == ["dev.write", "dev.flush", "dev.read", "dev.trim"]
    write = tracer.events[0]
    assert write.cat == "csd"
    assert write.args["lba"] == 3 and write.args["blocks"] == 1


def test_device_hooks_silent_when_disabled():
    device = CompressedBlockDevice(num_blocks=64)
    device.write_block(1, bytes(BLOCK_SIZE))
    device.flush()
    assert not tracing_enabled()


def test_engine_run_emits_pager_and_wal_events():
    tracer = install_tracer()
    device = CompressedBlockDevice(num_blocks=4096)
    tree = BMinusTree(device, BMinusConfig(
        cache_bytes=1 << 16, max_pages=256, log_blocks=64,
        log_flush_policy="commit"))
    for i in range(60):
        tree.put(i.to_bytes(8, "big"), bytes([i % 251]) * 48)
        tree.commit()
    names = {event.name for event in tracer.events}
    assert "wal.flush" in names
    assert "dev.write" in names
    assert names & {"pager.delta_flush", "pager.full_flush", "pager.shadow_flip"}


def test_fault_stats_hook():
    tracer = install_tracer()
    stats = FaultStats()  # __init__ assignments must stay silent
    assert tracer.emitted == 0
    stats.checksum_failures += 1
    stats.read_repairs += 2
    assert [event.name for event in tracer.events] == [
        "fault.checksum_failures", "fault.read_repairs"]
    assert tracer.events[1].args == {"delta": 2, "total": 2}
    merged = stats + FaultStats(read_repairs=1)  # __add__ builds silently
    assert merged.read_repairs == 3
    assert tracer.emitted == 2


def test_fault_stats_without_tracer_is_plain():
    stats = FaultStats()
    stats.wal_truncations += 1
    assert stats.wal_truncations == 1


# ------------------------------------------------------------- golden file


def _small_traced_run() -> dict:
    """A tiny fully deterministic traced run (NullCompressor: no zlib in the
    event stream, so the golden bytes are stable across Python versions)."""
    tracer = install_tracer(capacity=4096)
    clock = SimClock()
    tracer.attach_clock(clock)
    device = CompressedBlockDevice(num_blocks=2048, compressor=NullCompressor())
    tree = BMinusTree(device, BMinusConfig(
        cache_bytes=1 << 15, max_pages=128, log_blocks=32,
        log_flush_policy="commit"))
    for i in range(25):
        tree.put(i.to_bytes(8, "big"), bytes([i % 13 + 1]) * 40)
        tree.commit()
        clock.advance(0.001)
    tree.delete((7).to_bytes(8, "big"))
    tree.commit()
    doc = tracer.to_chrome()
    uninstall_tracer()
    return doc


def test_golden_chrome_trace():
    """The traced-run export must match the committed golden file exactly.

    Regenerate (after an intentional schema or hook change) with::

        REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \\
            tests/obs/test_trace.py::test_golden_chrome_trace
    """
    doc = _small_traced_run()
    assert validate_chrome_trace(doc) == []
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    golden = json.loads(GOLDEN.read_text())
    assert json.loads(json.dumps(doc)) == golden


def test_golden_run_is_deterministic():
    assert _small_traced_run() == _small_traced_run()
