"""Serving-layer differentials: multi-session runs vs a single caller.

The crash-safety and WA claims of the serving layer rest on one property:
multiplexing N client sessions through the group-commit front-end performs
*exactly* the engine work a single sequential caller would, just coalesced.
The service records its engine-visible schedule; replaying it op by op
through a fresh engine must leave bit-identical device bytes, device stats,
and WA counters (the batch-vs-single half of this equivalence is proved by
``tests/test_differential.py``).
"""

import pytest

from repro.core.bminus import BMinusConfig, BMinusTree
from repro.csd.device import CompressedBlockDevice
from repro.csd.faults import FaultInjectingDevice, FaultPlan
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.service import ServiceConfig, StorageService, make_sessions
from repro.service.server import replay_schedule
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.workloads.records import KeySpace

KS = KeySpace(n_records=300, record_size=64)

_ENGINES = {
    "bminus": lambda device, clock: BMinusTree(
        device,
        BMinusConfig(cache_bytes=1 << 16, max_pages=2048, log_blocks=512,
                     log_flush_policy="commit", group_atomic=True),
        clock,
    ),
    "lsm": lambda device, clock: LSMEngine(
        device,
        LSMConfig(memtable_bytes=8 << 10, level_base_bytes=32 << 10,
                  table_target_bytes=8 << 10, log_blocks=512,
                  log_flush_policy="commit", group_atomic=True),
        clock,
    ),
}


def _service_run(name, seed, n_sessions=8, ops=25):
    clock = SimClock()
    device = CompressedBlockDevice(num_blocks=30_000)
    engine = _ENGINES[name](device, clock)
    service = StorageService(engine, clock, ServiceConfig(),
                             record_schedule=True)
    sessions = make_sessions(n_sessions, ops, KS, DeterministicRng(seed),
                             arrival_interval=0.001)
    report = service.serve(sessions)
    device.flush()
    return device, engine, service, report


def _replay_run(name, schedule):
    clock = SimClock()
    device = CompressedBlockDevice(num_blocks=30_000)
    engine = _ENGINES[name](device, clock)
    replay_schedule(engine, clock, schedule)
    device.flush()
    return device, engine


def _assert_identical(served, replayed, label):
    s_device, s_engine = served
    r_device, r_engine = replayed
    assert r_device._stable == s_device._stable, f"{label}: device bytes"
    assert r_device.stats == s_device.stats, f"{label}: device stats"
    assert r_device.physical_bytes_used == s_device.physical_bytes_used, label
    assert r_engine.traffic_snapshot() == s_engine.traffic_snapshot(), (
        f"{label}: WA counters"
    )


@pytest.mark.parametrize("name", sorted(_ENGINES))
def test_multi_session_serve_bit_identical_to_sequential_replay(name):
    device, engine, service, report = _service_run(name, seed=2022)
    assert service.stats.completed == 200
    assert service.stats.unaccounted() == 0
    assert service.schedule, "schedule was not recorded"
    replayed = _replay_run(name, service.schedule)
    _assert_identical((device, engine), replayed, name)


@pytest.mark.parametrize("name", sorted(_ENGINES))
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_fuzz_session_interleavings_replay_identically(name, seed):
    """Different seeds change arrival interleavings, batch shapes, and
    window boundaries; the equivalence must hold for all of them."""
    device, engine, service, _ = _service_run(name, seed=seed, n_sessions=5,
                                              ops=12)
    replayed = _replay_run(name, service.schedule)
    _assert_identical((device, engine), replayed, f"{name}/seed={seed}")


@pytest.mark.parametrize("seed", [3, 11])
def test_fuzz_serving_under_transient_faults_never_drops_silently(seed):
    """Probabilistic transient faults under a multi-session load: whatever
    the engine's internal retries absorb or escalate, the service ledger
    must stay closed and every session op must reach a typed outcome."""
    clock = SimClock()
    device = FaultInjectingDevice(
        CompressedBlockDevice(num_blocks=30_000),
        FaultPlan(seed=seed, transient_read_rate=0.02,
                  transient_write_rate=0.01, max_faults=25),
    )
    engine = BMinusTree(
        device,
        BMinusConfig(cache_bytes=1 << 16, max_pages=2048, log_blocks=512,
                     log_flush_policy="commit", group_atomic=True),
        clock,
    )
    service = StorageService(engine, clock, ServiceConfig(deadline=10.0))
    sessions = make_sessions(6, 20, KS, DeterministicRng(seed),
                             arrival_interval=0.0005, write_fraction=0.5)
    service.serve(sessions)
    stats = service.stats
    assert stats.submitted == 120
    assert stats.unaccounted() == 0
    for session in sessions:
        assert session.stats.resolved == 20
    # The engine survived and still serves reads after the fault burst.
    assert engine.scan(KS.key(0), 5) is not None
