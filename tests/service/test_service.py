"""StorageService behaviour: admission, deadlines, retries, stalls, ledger.

Control-flow corners (retry budgets, stall waits) are driven through a
scripted stub engine so each path is hit exactly; end-to-end behaviour is
covered on the real engines in their group-atomic configurations.
"""

import pytest

from repro.core.bminus import BMinusConfig, BMinusTree
from repro.csd.device import CompressedBlockDevice
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    RetryExhaustedError,
    ServiceError,
    ServiceOverloadError,
    TransientIOError,
)
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.obs.metrics import MetricsHub
from repro.service import ServiceConfig, StorageService, make_sessions
from repro.service.server import _Pending
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.workloads.generator import Op, OpKind
from repro.workloads.records import KeySpace

KS = KeySpace(n_records=200, record_size=64)


# ----------------------------------------------------------- real engines


def _bminus(clock):
    return BMinusTree(
        CompressedBlockDevice(num_blocks=20_000),
        BMinusConfig(cache_bytes=1 << 16, max_pages=2048, log_blocks=512,
                     log_flush_policy="commit", group_atomic=True),
        clock,
    )


def _lsm(clock, **overrides):
    config = dict(memtable_bytes=8 << 10, level_base_bytes=32 << 10,
                  table_target_bytes=8 << 10, log_blocks=512,
                  log_flush_policy="commit", group_atomic=True)
    config.update(overrides)
    return LSMEngine(CompressedBlockDevice(num_blocks=20_000),
                     LSMConfig(**config), clock)


ENGINES = {"bminus": _bminus, "lsm": _lsm}


def _serve(engine_factory, n_sessions=6, ops=10, arrival=0.001,
           seed=2022, hub=None, **config):
    clock = SimClock()
    engine = engine_factory(clock)
    service = StorageService(engine, clock, ServiceConfig(**config), hub=hub)
    sessions = make_sessions(n_sessions, ops, KS, DeterministicRng(seed),
                             arrival_interval=arrival)
    report = service.serve(sessions)
    return service, sessions, report


# ------------------------------------------------------------ stub engine


class StubEngine:
    """Scripted engine double: fails the first ``fail_first`` applies."""

    def __init__(self, clock, fail_first=0):
        self.clock = clock
        self.fail_first = fail_first
        self.apply_calls = 0
        self.commits = 0
        self.batches = []

    @property
    def write_stalled(self):
        return False

    def stall_relief_at(self):
        return self.clock.now

    def put_batch(self, items):
        self.apply_calls += 1
        if self.apply_calls <= self.fail_first:
            raise TransientIOError("scripted transient fault")
        self.batches.append(("put", len(items)))

    def get_batch(self, keys):
        self.batches.append(("read", len(keys)))
        return [None] * len(keys)

    def scan(self, key, count):
        self.batches.append(("scan", count))
        return []

    def commit(self):
        self.commits += 1

    def tick(self):
        pass


class StalledEngine(StubEngine):
    """Stalled until a fixed simulated time (relief via clock advance)."""

    def __init__(self, clock, stalled_until):
        super().__init__(clock)
        self.stalled_until = stalled_until

    @property
    def write_stalled(self):
        return self.clock.now < self.stalled_until

    def stall_relief_at(self):
        return self.stalled_until


class WedgedEngine(StubEngine):
    """A stall that never clears, for the wedge-detection bound."""

    @property
    def write_stalled(self):
        return True


def _stub_serve(engine_cls, n_sessions=2, ops=4, write_fraction=1.0,
                engine_kwargs=(), **config):
    clock = SimClock()
    engine = engine_cls(clock, **dict(engine_kwargs))
    service = StorageService(engine, clock, ServiceConfig(**config))
    sessions = make_sessions(n_sessions, ops, KS, DeterministicRng(1),
                             arrival_interval=0.0001,
                             write_fraction=write_fraction)
    return service, engine, sessions


# -------------------------------------------------------------- fault-free


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_fault_free_serve_completes_every_op(name):
    service, sessions, report = _serve(ENGINES[name])
    assert service.stats.completed == 60
    assert service.stats.shed_overload == 0
    assert service.stats.deadline_expired == 0
    assert service.stats.unaccounted() == 0
    assert report.fairness == 0.0
    assert report.per_session_completed == [10] * 6
    assert report.throughput > 0
    assert service.stats.group_commits > 0
    # Same-kind runs went through the amortised batch paths.
    assert service.stats.batched_ops > 0


def test_report_to_dict_round_trips_the_tail():
    _, _, report = _serve(_bminus)
    payload = report.to_dict()
    assert payload["stats"]["unaccounted"] == 0
    assert payload["n_sessions"] == 6
    for digest in payload["latency"].values():
        assert {"p50", "p99", "p999", "max"} <= digest.keys()
    assert payload["fairness"] == 0.0


# --------------------------------------------------------------- admission


def test_overload_sheds_typed_and_counted():
    service, sessions, _ = _serve(
        _bminus, n_sessions=8, arrival=0.0001,
        queue_depth=4, commit_window=4, per_op_interval=0.01, deadline=10.0,
    )
    stats = service.stats
    assert stats.shed_overload > 0
    assert stats.submitted == 80
    assert stats.submitted == stats.admitted + stats.shed_overload
    assert stats.unaccounted() == 0
    # Zero silent drops: every submitted op has a per-session outcome too.
    for session in sessions:
        assert session.stats.resolved == 10
    assert stats.queue_peak == 4


def test_strict_admission_raises_on_first_shed():
    clock = SimClock()
    engine = _bminus(clock)
    service = StorageService(engine, clock, ServiceConfig(
        queue_depth=2, commit_window=2, per_op_interval=0.01,
        strict_admission=True,
    ))
    sessions = make_sessions(8, 10, KS, DeterministicRng(3),
                             arrival_interval=0.0001)
    with pytest.raises(ServiceOverloadError):
        service.serve(sessions)
    assert service.stats.shed_overload == 1  # counted before raising


def test_admission_pass_examines_only_nonempty_sessions():
    """Admission cost pin: a pass walks the ready-queue of live sessions;
    a session leaves the moment its last op is taken and is never scanned
    again.  Mixed fleet, every op already due: pass 1 scans all nine
    sessions (the eight one-op sessions drain), passes 2-5 scan only the
    long session, and the closing no-progress pass scans nothing."""
    clock = SimClock()
    service = StorageService(StubEngine(clock), clock, ServiceConfig())
    sessions = (
        make_sessions(8, 1, KS, DeterministicRng(5), arrival_interval=1e-9,
                      stagger=0.0)
        + make_sessions(1, 5, KS, DeterministicRng(6), arrival_interval=1e-9,
                        stagger=0.0)
    )
    clock.advance(1e-6)  # everything in every stream is now due
    service._admit_due(sessions)
    assert service.stats.submitted == 13
    assert service.admit_session_scans == 9 + 4
    # Everyone is drained: later rounds cost zero scans, not O(sessions).
    for _ in range(10):
        service._admit_due(sessions)
    assert service.admit_session_scans == 13


def test_drained_sessions_cost_nothing_for_the_rest_of_a_serve():
    """End to end: serving one long session alongside many short ones must
    not rescan the drained short fleet on every later admission round."""
    service, sessions, report = _serve(
        _bminus, n_sessions=30, ops=1, arrival=0.0001,
        per_op_interval=0.01, deadline=10.0,
    )
    assert service.stats.submitted == 30
    # The fleet drains inside the first service window (per-op service is
    # 100x the arrival spacing), so only the opening admission rounds ever
    # see live sessions — about three passes over the fleet in total.  A
    # full-scan admission would rescan all 30 sessions on every one of the
    # many later rounds of the serve loop.
    assert service.admit_session_scans <= 3 * len(sessions)


# --------------------------------------------------------------- deadlines


def test_deadline_expiry_is_typed_and_counted():
    service, sessions, _ = _serve(
        _bminus, n_sessions=4, arrival=0.001,
        commit_window=2, per_op_interval=0.01, deadline=0.015,
    )
    stats = service.stats
    assert stats.deadline_expired > 0
    assert stats.unaccounted() == 0
    expired = [s for s in sessions if s.stats.expired]
    assert expired
    for session in expired:
        assert isinstance(session.last_error, DeadlineExceededError)


# ------------------------------------------------------------------ retry


def test_transient_faults_retried_with_backoff():
    service, engine, sessions = _stub_serve(
        StubEngine, engine_kwargs={"fail_first": 2}.items(),
        commit_window=16, max_retries=4,
    )
    started = service.clock.now
    service.serve(sessions)
    assert service.stats.transient_retries == 2
    assert service.stats.retry_exhausted == 0
    assert service.stats.completed == 8
    assert service.stats.unaccounted() == 0
    # Backoff advanced simulated time beyond the pure service intervals.
    windows = service.stats.group_commits
    assert service.clock.now - started > windows * service.config.per_op_interval


def test_retry_budget_exhaustion_fails_the_run_typed():
    service, engine, sessions = _stub_serve(
        StubEngine, engine_kwargs={"fail_first": 100}.items(),
        commit_window=16, max_retries=2,
    )
    service.serve(sessions)
    stats = service.stats
    assert stats.retry_exhausted == 8          # every op in the failed runs
    assert stats.transient_retries == stats.group_commits * 3  # budget + 1 per run
    assert stats.completed == 0
    assert stats.unaccounted() == 0
    for session in sessions:
        assert session.stats.failed > 0
        assert isinstance(session.last_error, RetryExhaustedError)


# ------------------------------------------------------------------ stalls


def test_stall_absorbed_by_waiting_for_relief():
    service, engine, sessions = _stub_serve(
        StalledEngine, engine_kwargs={"stalled_until": 0.05}.items(),
    )
    service.serve(sessions)
    assert service.stats.write_stalls == 1
    assert service.stats.stall_seconds >= 0.04
    assert service.clock.now >= 0.05
    assert service.stats.completed == 8
    assert service.stats.unaccounted() == 0


def test_unclearing_stall_raises_after_bounded_rounds():
    service, engine, sessions = _stub_serve(
        WedgedEngine, max_stall_rounds=5,
    )
    with pytest.raises(ServiceError, match="5 relief rounds"):
        service.serve(sessions)


def test_real_lsm_stall_backpressure_end_to_end():
    """Tiny memtables + slow flush: the service must hit the LSM write
    stall, wait it out on the sim clock, and still resolve every op."""
    service, sessions, _ = _serve(
        lambda clock: _lsm(clock, memtable_bytes=2 << 10, flush_latency=0.01,
                           max_frozen_memtables=1),
        n_sessions=4, ops=40, arrival=0.0002, deadline=10.0,
    )
    stats = service.stats
    assert stats.write_stalls > 0
    assert stats.stall_seconds > 0
    assert stats.completed > 0
    assert stats.unaccounted() == 0
    for session in sessions:
        assert session.stats.resolved == 40  # zero silent drops under stalls


# ------------------------------------------------------------- coalescing


def _pending(kind, i):
    op = Op(kind, KS.key(i), b"v" * 32 if kind == OpKind.PUT else None,
            scan_length=4 if kind == OpKind.SCAN else 0)
    return _Pending(None, op, 0.0, 1.0)


def test_coalesce_builds_maximal_same_kind_runs_scans_alone():
    window = [
        _pending(OpKind.PUT, 0), _pending(OpKind.PUT, 1),
        _pending(OpKind.READ, 2), _pending(OpKind.SCAN, 3),
        _pending(OpKind.SCAN, 4), _pending(OpKind.PUT, 5),
    ]
    runs = StorageService._coalesce(window)
    assert [(kind, len(run)) for kind, run in runs] == [
        (OpKind.PUT, 2), (OpKind.READ, 1), (OpKind.SCAN, 1),
        (OpKind.SCAN, 1), (OpKind.PUT, 1),
    ]


def test_mixed_workload_with_scans_serves_clean():
    clock = SimClock()
    engine = _bminus(clock)
    service = StorageService(engine, clock, ServiceConfig())
    sessions = make_sessions(3, 12, KS, DeterministicRng(5),
                             arrival_interval=0.001, write_fraction=0.5,
                             scan_fraction=0.2)
    service.serve(sessions)
    assert service.stats.completed == 36
    assert service.stats.unaccounted() == 0


# ---------------------------------------------------------- configuration


@pytest.mark.parametrize("bad", [
    {"queue_depth": 0}, {"commit_window": 0}, {"per_op_interval": 0.0},
    {"deadline": 0.0}, {"max_retries": -1}, {"backoff_base": -1.0},
    {"backoff_jitter": -0.1}, {"max_stall_rounds": 0},
])
def test_config_validation_rejects(bad):
    with pytest.raises(ConfigError):
        ServiceConfig(**bad).validate()


# ------------------------------------------------------------ observability


def test_serve_feeds_the_metrics_hub_service_series():
    hub = MetricsHub(window_seconds=0.005)
    service, _, _ = _serve(_bminus, hub=hub)
    obs = hub.summary()
    assert "service" in obs
    assert obs["service"]["totals"]["completed"] == service.stats.completed
    assert obs["service"]["windows"]
    assert obs["service"]["queue_depth"]["n"] > 0
    # The WA window series ran alongside the service series.
    assert obs["totals"]
    # Client-visible latency lives on the service's own histograms
    # (queueing included), separate from the hub's device-busy op latency.
    assert service.latency["put"].summary()["n"] > 0
