"""Client-session model: arrival schedules, determinism, fairness metric."""

import pytest

from repro.service.session import ClientSession, make_sessions, fairness_spread
from repro.sim.rng import DeterministicRng
from repro.workloads.generator import Op, OpKind
from repro.workloads.records import KeySpace

KS = KeySpace(n_records=100, record_size=64)


def puts():
    i = 0
    while True:
        yield Op(OpKind.PUT, KS.key(i % KS.n_records), b"v" * 32)
        i += 1


def test_session_arrival_schedule_is_open_loop():
    session = ClientSession(0, puts(), n_ops=3, arrival_interval=0.5,
                            first_arrival=1.0)
    assert session.next_arrival == 1.0 and not session.exhausted
    session.take_op()
    assert session.next_arrival == 1.5
    session.take_op()
    session.take_op()
    assert session.exhausted
    with pytest.raises(ValueError):
        session.take_op()


def test_session_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ClientSession(0, puts(), n_ops=-1, arrival_interval=0.1)
    with pytest.raises(ValueError):
        ClientSession(0, puts(), n_ops=1, arrival_interval=0.0)


def _streams(seed):
    sessions = make_sessions(4, 5, KS, DeterministicRng(seed),
                             arrival_interval=0.01)
    return [[s.take_op() for _ in range(5)] for s in sessions]


def test_make_sessions_is_deterministic_and_independent():
    first, second = _streams(7), _streams(7)
    assert first == second
    assert _streams(8) != first
    # Sessions draw from independent RNG splits, not a shared stream.
    assert first[0] != first[1]


def test_make_sessions_staggers_first_arrivals():
    sessions = make_sessions(4, 1, KS, DeterministicRng(0),
                             arrival_interval=0.04)
    assert [s.next_arrival for s in sessions] == [0.0, 0.01, 0.02, 0.03]
    explicit = make_sessions(4, 1, KS, DeterministicRng(0),
                             arrival_interval=0.04, stagger=0.0)
    assert all(s.next_arrival == 0.0 for s in explicit)


def test_fairness_spread():
    sessions = make_sessions(4, 1, KS, DeterministicRng(0),
                             arrival_interval=0.01)
    assert fairness_spread(sessions) == 0.0  # nothing completed yet
    for session in sessions:
        session.stats.completed = 10
    assert fairness_spread(sessions) == 0.0  # perfectly even
    sessions[0].stats.completed = 30
    # counts 30,10,10,10 -> spread (30-10)/15
    assert fairness_spread(sessions) == pytest.approx(20 / 15)


def test_session_stats_resolved_sums_every_outcome():
    session = ClientSession(0, puts(), n_ops=4, arrival_interval=0.1)
    session.stats.completed = 1
    session.stats.shed = 1
    session.stats.expired = 1
    session.stats.failed = 1
    assert session.stats.resolved == 4
