"""Differential proofs for the shard router (the PR's correctness anchor).

Two exactness claims, both for both engines:

* a **1-shard router** is pure plumbing: the shard device's ``_stable``
  bytes, ``DeviceStats``, and WA counters are bit-identical to a bare
  engine built by the same ``make_engine`` and driven by the same calls
  (the routing-journal writes land on the separate meta device only);
* an **N-shard run**'s merged get-results and per-key final states exactly
  equal a sequential unsharded replay of the same workload — sharding
  changes placement and throughput, never semantics.
"""

import random

import pytest

from repro.csd.device import CompressedBlockDevice
from repro.metrics.counters import compute_wa
from repro.shard.router import ShardConfig, ShardRouter, make_engine
from repro.shard.sim import make_shard_workload

ENGINES = ("bminus", "lsm")


def _workload(seed: int, ops: int):
    return make_shard_workload(seed, ops)


def _drive(target, stream, commit_every: int = 8):
    """Apply the stream through any engine-like KV surface, committing in
    fixed windows; returns the reference model."""
    model = {}
    for index, (kind, key, value) in enumerate(stream):
        if kind == "put":
            target.put(key, value)
            model[key] = value
        else:
            target.delete(key)
            model.pop(key, None)
        if (index + 1) % commit_every == 0:
            target.commit()
    target.commit()
    return model


@pytest.mark.parametrize("engine", ENGINES)
def test_one_shard_router_is_bit_identical_to_bare_engine(engine):
    config = ShardConfig(n_shards=1, engine=engine)
    stream = _workload(seed=11, ops=160)

    bare_device = CompressedBlockDevice(config.device_blocks)
    bare = make_engine(config, bare_device)
    _drive(bare, stream)

    router = ShardRouter.create(config)
    _drive(router, stream)
    (shard_device,) = (router.devices[sid] for sid in router.stacks)

    assert shard_device._stable == bare_device._stable, "device bytes differ"
    assert shard_device.stats == bare_device.stats, "device stats differ"
    assert shard_device.physical_bytes_used == bare_device.physical_bytes_used
    assert router.traffic_snapshot() == bare.traffic_snapshot(), (
        "WA counters differ"
    )
    assert router.wa_report() == compute_wa(bare.traffic_snapshot())
    bare_faults = getattr(bare, "fault_stats", None)
    if bare_faults is not None:
        assert router.fault_stats() == bare_faults, "fault stats differ"
    # The routing journal lives on the meta device alone.
    assert router.meta_device.stats.write_ios > 0
    router.close()
    bare.close()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("partitioning", ("hash", "range"))
def test_n_shard_run_equals_unsharded_sequential_replay(engine, partitioning):
    # Range mode gets boundaries matched to the workload's key distribution
    # (``user%08d`` over < 4*ops ids); the uniform default would put every
    # key in one shard and prove nothing.
    boundaries = (
        [b"user00000240", b"user00000480", b"user00000720"]
        if partitioning == "range"
        else None
    )
    config = ShardConfig(
        n_shards=4, engine=engine, partitioning=partitioning,
        boundaries=boundaries,
    )
    stream = _workload(seed=23, ops=240)

    router = ShardRouter.create(config)
    model = _drive(router, stream)

    unsharded = make_engine(config, CompressedBlockDevice(config.device_blocks))
    unsharded_model = _drive(unsharded, stream)
    assert unsharded_model == model

    # Per-key final states: full iteration agrees, ordered and exact.
    assert dict(router.items()) == dict(unsharded.items()) == model
    assert [k for k, _ in router.items()] == sorted(model)

    # Merged get-results: batch lookups over every key ever touched agree
    # position-for-position with the unsharded engine.
    touched = sorted({op[1] for op in stream})
    assert router.get_batch(touched) == unsharded.get_batch(touched)

    # The router actually sharded the data (no degenerate placement).
    populated = [
        sid for sid in router.stacks
        if sum(1 for _ in router.stacks[sid].items()) > 0
    ]
    assert len(populated) >= 2, "workload landed on a single shard"
    # Merged user-byte accounting sums exactly.
    assert router.traffic_snapshot().user_bytes == sum(
        router.stacks[sid].traffic_snapshot().user_bytes
        for sid in router.stacks
    )
    router.close()
    unsharded.close()


@pytest.mark.parametrize("engine", ENGINES)
def test_batched_scatter_gather_equals_unsharded_batches(engine):
    """The batch API path: scatter/gather batches end in the same per-key
    state as the same batches applied to one engine."""
    rng = random.Random(31)
    config = ShardConfig(n_shards=3, engine=engine)
    router = ShardRouter.create(config)
    unsharded = make_engine(config, CompressedBlockDevice(config.device_blocks))

    live = set()
    for _ in range(6):
        items = [
            (b"batch%06d" % rng.randrange(400),
             bytes(rng.getrandbits(8) for _ in range(rng.randrange(20, 90))))
            for _ in range(40)
        ]
        # Batches may repeat a key; per-shard order preserves last-wins.
        router.put_batch(items)
        unsharded.put_batch(items)
        live.update(k for k, _ in items)
        if live and rng.random() < 0.7:
            doomed = sorted(live)[: rng.randrange(1, min(9, len(live)))]
            router.delete_batch(doomed)
            unsharded.delete_batch(doomed)
            live.difference_update(doomed)
        router.commit()
        unsharded.commit()

    keys = sorted(live) + [b"batch-missing"]
    assert router.get_batch(keys) == unsharded.get_batch(keys)
    assert dict(router.items()) == dict(unsharded.items())
    router.close()
    unsharded.close()
