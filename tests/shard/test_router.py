"""Seeded property tests for the routing layer.

No engine I/O here — these fuzz the pure routing algebra (token function,
partition table, split arithmetic) plus routing stability across a full
router rebuild from the journaled manifest:

* every key routes to exactly one shard, for random key sets x
  (range | hash) x N shards;
* routing is a pure function of the persisted table: rebuilding the router
  (or just the table from its JSON form) routes every key identically;
* a split preserves ownership of everything *outside* the migrated range:
  only keys in ``[token, old_high)`` of the split shard may change owner,
  and they all move to the new shard.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShardMigrationError
from repro.shard.router import (
    PartitionMap,
    ShardConfig,
    ShardRouter,
    _initial_table,
    hash_token,
)
from tests.fuzz import fuzz_settings, report_seed, seed_strategy


def _keys(rng: random.Random, n: int) -> list:
    out = set()
    while len(out) < n:
        out.add(bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 24))))
    return sorted(out)


def _token(config: ShardConfig, key: bytes) -> bytes:
    return hash_token(key) if config.partitioning == "hash" else key


@given(
    seed=seed_strategy(),
    n_shards=st.integers(1, 9),
    partitioning=st.sampled_from(["hash", "range"]),
)
@fuzz_settings(max_examples=40, deadline=None)
def test_every_key_routes_to_exactly_one_shard(seed, n_shards, partitioning):
    with report_seed(seed):
        rng = random.Random(seed)
        config = ShardConfig(n_shards=n_shards, partitioning=partitioning)
        table = _initial_table(config)
        assert len(table) == n_shards
        for key in _keys(rng, 64):
            token = _token(config, key)
            owner = table.shard_of(token)
            # Exactly-one: the owner's interval contains the token, and no
            # other interval does (intervals are disjoint by construction).
            owners = [
                sid
                for sid in table.shard_ids
                for (low, high) in [table.interval(sid)]
                if low <= token and (high is None or token < high)
            ]
            assert owners == [owner]


@given(
    seed=seed_strategy(),
    n_shards=st.integers(1, 6),
    partitioning=st.sampled_from(["hash", "range"]),
)
@fuzz_settings(max_examples=25, deadline=None)
def test_routing_is_stable_across_rebuild(seed, n_shards, partitioning):
    with report_seed(seed):
        rng = random.Random(seed)
        config = ShardConfig(n_shards=n_shards, partitioning=partitioning)
        table = _initial_table(config)
        rebuilt = PartitionMap.from_json(table.to_json())
        assert rebuilt == table
        for key in _keys(rng, 48):
            token = _token(config, key)
            assert rebuilt.shard_of(token) == table.shard_of(token)


@given(
    seed=seed_strategy(),
    n_shards=st.integers(1, 6),
    partitioning=st.sampled_from(["hash", "range"]),
)
@fuzz_settings(max_examples=25, deadline=None)
def test_split_preserves_unmigrated_ownership(seed, n_shards, partitioning):
    with report_seed(seed):
        rng = random.Random(seed)
        config = ShardConfig(n_shards=n_shards, partitioning=partitioning)
        table = _initial_table(config)
        keys = _keys(rng, 64)
        tokens = sorted({_token(config, key) for key in keys})

        victim = rng.choice(table.shard_ids)
        low, high = table.interval(victim)
        inside = [t for t in tokens if low < t and (high is None or t < high)]
        if not inside:
            return  # nothing in the interval to split at; trivially stable
        split_token = rng.choice(inside)
        new_id = max(table.shard_ids) + 1
        post = table.split(victim, split_token, new_id)
        assert len(post) == len(table) + 1

        for key in keys:
            token = _token(config, key)
            before = table.shard_of(token)
            after = post.shard_of(token)
            migrated = (
                before == victim
                and split_token <= token
                and (high is None or token < high)
            )
            if migrated:
                assert after == new_id
            else:
                assert after == before, "ownership outside the range changed"


@given(seed=seed_strategy(), partitioning=st.sampled_from(["hash", "range"]))
@fuzz_settings(max_examples=6, deadline=None)
def test_post_split_router_rebuild_routes_identically(seed, partitioning):
    """End to end: after a live split and a full reopen from the manifest,
    every key still routes to the shard that actually holds it."""
    with report_seed(seed):
        rng = random.Random(seed)
        config = ShardConfig(n_shards=2, partitioning=partitioning)
        router = ShardRouter.create(config)
        items = [
            (key, bytes(rng.getrandbits(8) for _ in range(24)))
            for key in _keys(rng, 60)
        ]
        router.put_batch(items)
        router.commit()
        pre_owner = {key: router.route(key) for key, _ in items}
        victim = rng.choice(router.table.shard_ids)
        try:
            new_id = router.split_shard(victim)
        except ShardMigrationError:
            # An empty or single-token victim shard has no valid median
            # split token — a correct refusal, not a failure.
            router.close()
            return
        reopened = ShardRouter.open(config, router.devices, router.meta_device)
        assert reopened.table == router.table
        for key, value in items:
            owner = reopened.route(key)
            assert reopened.stacks[owner].get(key) == value
            if owner != pre_owner[key]:
                assert owner == new_id, "only migrated keys may change owner"
        router.close()
        reopened.close()
