"""The crash-safe shard split: manifest journal + migration protocol.

The exhaustive every-boundary crash schedule lives in the faultcheck
campaign (``run_shard_split_schedule``); here the protocol's pieces are
pinned directly — journal framing and torn-tail recovery, rollback vs
roll-forward resolution, id burning, and content invariance of a split.
"""

import pytest

from repro.csd.device import BLOCK_SIZE, CompressedBlockDevice
from repro.errors import ShardManifestError, ShardMigrationError
from repro.shard.manifest import (
    RoutingManifest,
    STATE_ACTIVE,
    STATE_MIGRATING,
    pack_record,
    unpack_record,
)
from repro.shard.router import ShardConfig, ShardRouter


def _record(epoch, state=STATE_ACTIVE, **extra):
    base = {
        "epoch": epoch, "state": state, "partitioning": "hash",
        "table": [["", 0]], "stacks": 1, "migration": None,
    }
    base.update(extra)
    return base


# ----------------------------------------------------------------- manifest


def test_manifest_round_trips_records_in_order():
    manifest = RoutingManifest(CompressedBlockDevice(num_blocks=64))
    for epoch in range(5):
        manifest.append(_record(epoch))
    assert [r["epoch"] for r in manifest.scan()] == [0, 1, 2, 3, 4]
    last, history = manifest.latest()
    assert last["epoch"] == 4 and len(history) == 5


def test_manifest_record_framing_detects_corruption():
    record = _record(7)
    framed = pack_record(record)
    assert len(framed) % BLOCK_SIZE == 0
    assert unpack_record(framed) == record
    # Flip one payload byte: CRC must reject the frame.
    corrupt = bytearray(framed)
    corrupt[20] ^= 0xFF
    assert unpack_record(bytes(corrupt)) is None
    assert unpack_record(b"\x00" * BLOCK_SIZE) is None


def test_manifest_torn_tail_is_end_of_journal_not_an_error():
    device = CompressedBlockDevice(num_blocks=64)
    manifest = RoutingManifest(device)
    manifest.append(_record(0))
    manifest.append(_record(1))
    # A torn append: garbage where record 2 would start.
    device.write_blocks(manifest._cursor, b"\x13" * BLOCK_SIZE)
    device.flush()
    fresh = RoutingManifest(device)
    last, history = fresh.latest()
    assert last["epoch"] == 1 and len(history) == 2
    # The next append overwrites the torn tail.
    fresh.append(_record(2))
    assert [r["epoch"] for r in RoutingManifest(device).scan()] == [0, 1, 2]


def test_manifest_empty_device_raises():
    manifest = RoutingManifest(CompressedBlockDevice(num_blocks=8))
    with pytest.raises(ShardManifestError):
        manifest.latest()


def test_manifest_exhaustion_raises_instead_of_overwriting():
    manifest = RoutingManifest(CompressedBlockDevice(num_blocks=2))
    manifest.append(_record(0))
    manifest.append(_record(1))
    with pytest.raises(ShardManifestError):
        manifest.append(_record(2))
    assert [r["epoch"] for r in manifest.scan()] == [0, 1]


# -------------------------------------------------------------- split logic


def _populated_router(partitioning="hash", engine="bminus", n=2, ops=120):
    from repro.shard.sim import make_shard_workload

    config = ShardConfig(n_shards=n, partitioning=partitioning, engine=engine)
    router = ShardRouter.create(config)
    model = {}
    for kind, key, value in make_shard_workload(17, ops):
        if kind == "put":
            router.put(key, value)
            model[key] = value
        else:
            router.delete(key)
            model.pop(key, None)
    router.commit()
    return config, router, model


@pytest.mark.parametrize("engine", ("bminus", "lsm"))
def test_split_moves_the_range_and_changes_no_content(engine):
    config, router, model = _populated_router(engine=engine)
    victim = max(
        router.stacks, key=lambda s: sum(1 for _ in router.stacks[s].items())
    )
    before = sum(1 for _ in router.stacks[victim].items())
    new_id = router.split_shard(victim)
    assert router.n_shards == 3
    assert dict(router.items()) == model, "split changed KV content"
    # The new shard actually took keys, and the source shrank to match.
    moved = sum(1 for _ in router.stacks[new_id].items())
    assert moved > 0
    assert sum(1 for _ in router.stacks[victim].items()) == before - moved
    # Every key is served by the shard the table routes it to.
    for key, value in model.items():
        assert router.stacks[router.route(key)].get(key) == value
    # Journal history: create, migrating, commit, seal.
    states = [r["state"] for r in router.manifest.scan()]
    assert states == [STATE_ACTIVE, STATE_MIGRATING, STATE_ACTIVE, STATE_ACTIVE]
    router.close()


def test_split_rejects_bad_invocations():
    config, router, model = _populated_router()
    with pytest.raises(ShardMigrationError):
        router.split_shard(99)  # unknown shard
    low, _high = router.table.interval(0)
    with pytest.raises(ShardMigrationError):
        router.split_shard(0, token=low)  # token not inside the open interval
    router.close()


def test_split_of_empty_shard_needs_explicit_token():
    config = ShardConfig(n_shards=1)
    router = ShardRouter.create(config)
    with pytest.raises(ShardMigrationError):
        router.split_shard(0)
    new_id = router.split_shard(0, token=b"\x80")
    assert router.n_shards == 2 and new_id == 1
    router.close()


def test_interrupted_migration_rolls_back_and_burns_the_id():
    """A MIGRATING tail (crash before the commit point) must recover to the
    pre-split table, ignore the orphan destination, and never reuse its id."""
    config, router, model = _populated_router()
    pre_table = router.table
    victim = max(
        router.stacks, key=lambda s: sum(1 for _ in router.stacks[s].items())
    )
    # Simulate the crash window by appending the intent record only.
    router.stacks_created += 1
    router.manifest.append(
        router._record(
            STATE_MIGRATING,
            {"src": victim, "dst": 2, "token": "80", "high": None},
        )
    )
    recovered = ShardRouter.open(config, router.devices, router.meta_device)
    assert recovered.rolled_back_migrations == 1
    assert recovered.table == pre_table
    assert recovered.n_shards == 2
    assert dict(recovered.items()) == model
    # The burned id: a later split allocates 3, never 2.
    new_id = recovered.split_shard(
        max(recovered.stacks,
            key=lambda s: sum(1 for _ in recovered.stacks[s].items()))
    )
    assert new_id == 3
    recovered.close()
    router.close()


def test_committed_migration_resumes_cleanup_on_open():
    """An ACTIVE tail still carrying its migration descriptor (crash during
    cleanup) must keep the post-split table, finish deleting the migrated
    range from the source, and seal."""
    config, router, model = _populated_router()
    victim = max(
        router.stacks, key=lambda s: sum(1 for _ in router.stacks[s].items())
    )
    new_id = router.split_shard(victim)
    # Rewind the journal to just after the commit point: drop the seal.
    records = router.manifest.scan()
    assert records[-1]["state"] == STATE_ACTIVE and records[-2]["migration"]
    meta = CompressedBlockDevice(num_blocks=64)
    rewound = RoutingManifest(meta)
    for record in records[:-1]:
        rewound.append(record)
    # Undo the cleanup on the source: re-put one migrated key there directly.
    migrated_key = next(iter(dict(router.stacks[new_id].items())))
    router.stacks[victim].put(migrated_key, b"stale-straggler")
    router.stacks[victim].commit()
    recovered = ShardRouter.open(config, router.devices, meta)
    assert recovered.resumed_cleanups == 1
    assert recovered.n_shards == 3
    # The straggler was cleaned up; the owner serves the real value.
    assert dict(recovered.items()) == model
    assert recovered.get(migrated_key) == model[migrated_key]
    assert sum(
        1 for key, _ in recovered.stacks[victim].items()
        if recovered.route(key) != victim
    ) == 0
    assert RoutingManifest(meta).latest()[0]["migration"] is None
    recovered.close()
    router.close()
