"""Unit tests for the simulated clock."""

import pytest

from repro.sim.clock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_custom_start_time():
    assert SimClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_advance_returns_new_time():
    clock = SimClock()
    assert clock.advance(3.0) == pytest.approx(3.0)


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_zero_advance_allowed():
    clock = SimClock()
    clock.advance(0.0)
    assert clock.now == 0.0


def test_advance_to_future():
    clock = SimClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_past_is_noop():
    clock = SimClock(10.0)
    clock.advance_to(5.0)
    assert clock.now == 10.0


def test_alarm_fires_after_interval():
    clock = SimClock()
    clock.set_alarm("flush", 60.0)
    assert not clock.alarm_due("flush")
    clock.advance(59.9)
    assert not clock.alarm_due("flush")
    clock.advance(0.2)
    assert clock.alarm_due("flush")


def test_alarm_rearm_moves_deadline():
    clock = SimClock()
    clock.set_alarm("flush", 10.0)
    clock.advance(10.0)
    assert clock.alarm_due("flush")
    clock.set_alarm("flush", 10.0)
    assert not clock.alarm_due("flush")


def test_unknown_alarm_not_due():
    assert not SimClock().alarm_due("nope")


def test_clear_alarm():
    clock = SimClock()
    clock.set_alarm("flush", 1.0)
    clock.clear_alarm("flush")
    clock.advance(2.0)
    assert not clock.alarm_due("flush")


def test_nonpositive_alarm_interval_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.set_alarm("bad", 0.0)
