"""Unit tests for deterministic RNG helpers."""

import pytest

from repro.sim.rng import DeterministicRng, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_derive_seed_varies_with_labels():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_derive_seed_varies_with_root():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_is_64_bit():
    seed = derive_seed(7, "x")
    assert 0 <= seed < 2**64


def test_same_seed_same_stream():
    a = DeterministicRng(9)
    b = DeterministicRng(9)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_split_independent_of_consumption():
    a = DeterministicRng(9)
    b = DeterministicRng(9)
    a.random()  # consume from one parent only
    assert a.split("child").random() == b.split("child").random()


def test_split_streams_differ():
    root = DeterministicRng(9)
    assert root.split("x").random() != root.split("y").random()


def test_nested_split_path_matters():
    root = DeterministicRng(9)
    assert root.split("a").split("b").random() == DeterministicRng(9).split("a", "b").random()


def test_random_bytes_length():
    rng = DeterministicRng(1)
    assert len(rng.random_bytes(17)) == 17


def test_random_bytes_empty():
    assert DeterministicRng(1).random_bytes(0) == b""


def test_random_bytes_negative_rejected():
    with pytest.raises(ValueError):
        DeterministicRng(1).random_bytes(-1)


def test_random_bytes_deterministic():
    assert DeterministicRng(3).random_bytes(32) == DeterministicRng(3).random_bytes(32)
