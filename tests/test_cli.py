"""Tests for the ad-hoc CLI."""

import pytest

from repro.cli import build_parser, main


def small(*extra):
    return list(extra) + ["--records", "3000", "--steady-ops", "2000"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command(capsys):
    assert main(["run", "--system", "bminus"] + small()) == 0
    out = capsys.readouterr().out
    assert "Write amplification" in out
    assert "bminus" in out
    assert "WA_pg" in out


def test_run_rejects_unknown_system():
    with pytest.raises(SystemExit):
        main(["run", "--system", "leveldb"] + small())


def test_compare_command(capsys):
    assert main(["compare", "--systems", "bminus,rocksdb"] + small()) == 0
    out = capsys.readouterr().out
    assert "bminus" in out and "rocksdb" in out


def test_speed_command(capsys):
    rc = main(["speed", "--systems", "bminus", "--workload", "read",
               "--threads", "4"] + small())
    assert rc == 0
    out = capsys.readouterr().out
    assert "TPS" in out


def test_run_with_knobs(capsys):
    rc = main(["run", "--system", "bminus", "--threshold-t", "1024",
               "--segment-size", "256", "--record-size", "32",
               "--log-policy", "commit"] + small())
    assert rc == 0
    assert "beta" in capsys.readouterr().out


def test_run_with_zipf_distribution(capsys):
    rc = main(["run", "--system", "bminus", "--distribution", "zipf",
               "--theta", "0.9"] + small())
    assert rc == 0
    assert "Write amplification" in capsys.readouterr().out
