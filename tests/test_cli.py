"""Tests for the ad-hoc CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.trace import tracing_enabled, validate_chrome_trace


def small(*extra):
    return list(extra) + ["--records", "3000", "--steady-ops", "2000"]


def tiny(*extra):
    return list(extra) + ["--records", "1500", "--steady-ops", "800"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command(capsys):
    assert main(["run", "--system", "bminus"] + small()) == 0
    out = capsys.readouterr().out
    assert "Write amplification" in out
    assert "bminus" in out
    assert "WA_pg" in out


def test_run_rejects_unknown_system():
    with pytest.raises(SystemExit):
        main(["run", "--system", "leveldb"] + small())


def test_compare_command(capsys):
    assert main(["compare", "--systems", "bminus,rocksdb"] + small()) == 0
    out = capsys.readouterr().out
    assert "bminus" in out and "rocksdb" in out


def test_speed_command(capsys):
    rc = main(["speed", "--systems", "bminus", "--workload", "read",
               "--threads", "4"] + small())
    assert rc == 0
    out = capsys.readouterr().out
    assert "TPS" in out


def test_run_with_knobs(capsys):
    rc = main(["run", "--system", "bminus", "--threshold-t", "1024",
               "--segment-size", "256", "--record-size", "32",
               "--log-policy", "commit"] + small())
    assert rc == 0
    assert "beta" in capsys.readouterr().out


def test_run_with_zipf_distribution(capsys):
    rc = main(["run", "--system", "bminus", "--distribution", "zipf",
               "--theta", "0.9"] + small())
    assert rc == 0
    assert "Write amplification" in capsys.readouterr().out


# ------------------------------------------------------------ repro trace


def test_trace_command_exports_valid_chrome_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(tiny("trace", "--out", str(out))) == 0
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    assert doc["traceEvents"], "expected a non-empty trace"
    assert doc["otherData"]["emitted"] > 0
    assert "Write amplification" in capsys.readouterr().out
    # The command must uninstall the process-global tracer on the way out.
    assert not tracing_enabled()


def test_trace_command_text_timeline(capsys):
    assert main(tiny("trace", "--out", "-", "--limit", "10")) == 0
    out = capsys.readouterr().out
    assert "events emitted" in out
    assert not tracing_enabled()


def test_trace_command_unwritable_path_exits_nonzero(capsys):
    rc = main(tiny("trace", "--out", "/nonexistent-dir/trace.json"))
    assert rc == 1
    assert "repro: error" in capsys.readouterr().err
    assert not tracing_enabled()


# ------------------------------------------------------------ repro stats


def test_stats_command_tables(capsys):
    assert main(tiny("stats", "--window", "0.1")) == 0
    out = capsys.readouterr().out
    assert "Simulated per-op latency" in out
    assert "WA over time" in out
    assert "put" in out


def test_stats_watch_streams_windows(capsys):
    assert main(tiny("stats", "--window", "0.05", "--watch")) == 0
    out = capsys.readouterr().out
    assert out.count("WA=") >= 2  # at least two windows streamed live


def test_stats_json_export(tmp_path, capsys):
    path = tmp_path / "hub.json"
    assert main(tiny("stats", "--window", "0.1", "--json", str(path))) == 0
    data = json.loads(path.read_text())
    assert "op_latency" in data and "series" in data
    assert data["series"]["windows"]


def test_stats_zipf_distribution(capsys):
    rc = main(tiny("stats", "--window", "0.1", "--distribution", "zipf"))
    assert rc == 0
    assert "WA over time" in capsys.readouterr().out


def test_stats_json_unwritable_path_exits_nonzero(capsys):
    rc = main(tiny("stats", "--json", "/nonexistent-dir/hub.json"))
    assert rc == 1
    assert "repro: error" in capsys.readouterr().err


# -------------------------------------------------------------- exit codes


def test_bench_check_missing_baseline_exits_nonzero(capsys):
    rc = main(["bench", "--check", "--baseline", "/nonexistent/baseline.json"])
    assert rc == 1
    assert "repro: error" in capsys.readouterr().err


def test_config_error_exits_nonzero(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    rc = main(small("compare", "--systems", "bminus"))
    assert rc == 1
    assert "REPRO_JOBS" in capsys.readouterr().err


def serve_small(*extra):
    return ["serve-sim", "--sessions", "6", "--ops", "8",
            "--records", "2000"] + list(extra)


def test_serve_sim_command(capsys):
    assert main(serve_small()) == 0
    out = capsys.readouterr().out
    assert "fairness" in out and "p999" in out


@pytest.mark.parametrize("system", ["bminus", "btree", "lsm"])
def test_serve_sim_all_systems(system, capsys):
    assert main(serve_small("--system", system)) == 0


def test_serve_sim_json_ledger_closed(capsys):
    assert main(serve_small("--json")) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["unaccounted"] == 0
    assert payload["stats"]["completed"] == 48
    assert "p999" in payload["latency"]["put"]
    assert "obs" in payload


def test_serve_sim_overload_sheds_typed(capsys):
    assert main(serve_small("--overload", "--json")) == 0
    payload = json.loads(capsys.readouterr().out)
    stats = payload["stats"]
    assert stats["shed_overload"] > 0
    assert stats["unaccounted"] == 0
    assert stats["queue_peak"] > 0


def test_serve_sim_is_deterministic(capsys):
    assert main(serve_small("--json")) == 0
    first = capsys.readouterr().out
    assert main(serve_small("--json")) == 0
    assert capsys.readouterr().out == first


def test_serve_sim_rejects_unknown_system():
    with pytest.raises(SystemExit):
        main(serve_small("--system", "rocksdb"))


def shard_small(*extra):
    return ["shard-sim", "--shards", "3", "--ops", "120"] + list(extra)


def test_shard_sim_command(capsys):
    assert main(shard_small()) == 0
    out = capsys.readouterr().out
    assert "shard-sim: 3 x bminus" in out
    assert "merged: WA=" in out


def test_shard_sim_json_topology(capsys):
    assert main(shard_small("--json")) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["shards"]) == 3
    merged = payload["merged"]
    assert merged["final_keys"] > 0
    assert merged["final_keys"] == sum(
        row["final_keys"] for row in payload["shards"]
    )
    assert merged["ops_applied"] == 120
    assert merged["wa_total"] > 0


@pytest.mark.parametrize("system", ["bminus", "lsm"])
def test_shard_sim_both_engines(system, capsys):
    assert main(shard_small("--system", system)) == 0
    assert f"x {system}" in capsys.readouterr().out


def test_shard_sim_jobs_merge_is_exact(capsys):
    """The pool path merges to the identical payload (bar the jobs field)."""
    assert main(shard_small("--json", "--jobs", "1")) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(shard_small("--json", "--jobs", "2")) == 0
    pooled = json.loads(capsys.readouterr().out)
    serial.pop("jobs"), pooled.pop("jobs")
    assert serial == pooled


def test_shard_sim_rejects_unknown_partitioning():
    with pytest.raises(SystemExit):
        main(shard_small("--partitioning", "consistent-hash"))


# ---------------------------------------------------- repro compact-compare


def test_compact_compare_table(capsys):
    rc = main(["compact-compare", "--strategies", "leveled",
               "--value-sizes", "400", "--keys", "40"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Compaction strategy WA sweep" in out
    assert "WA (KV-sep)" in out and "leveled" in out


def test_compact_compare_unknown_strategy_exits_nonzero(capsys):
    rc = main(["compact-compare", "--strategies", "universal", "--keys", "20"])
    assert rc == 1
    assert "unknown compaction_strategy" in capsys.readouterr().err


def test_compact_compare_bad_threshold_exits_nonzero(capsys):
    rc = main(["compact-compare", "--strategies", "leveled",
               "--threshold", "-5", "--keys", "20"])
    assert rc == 1
    assert "repro: error" in capsys.readouterr().err


def test_stats_json_exports_engine_shape(tmp_path, capsys):
    path = tmp_path / "hub.json"
    rc = main(tiny("stats", "--system", "rocksdb", "--window", "0.1",
                   "--json", str(path)))
    assert rc == 0
    data = json.loads(path.read_text())
    shape = data["engine"]["level_shape"]
    assert isinstance(shape, list) and len(shape) > 0
    assert all(isinstance(b, int) for b in shape)
    assert sum(shape) > 0  # steady state pushed data into the levels
