"""Differential testing: all three engines must agree on KV semantics.

The same randomly generated operation stream is applied to the B⁻-tree, the
baseline B+-tree, and the LSM-tree; at every checkpoint the three engines
and a plain dict must agree on gets, scans, and full iteration.  Any
divergence pinpoints a semantic bug in exactly one engine.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.engine import BTreeConfig, BTreeEngine
from repro.core.bminus import BMinusConfig, BMinusTree
from repro.csd.device import CompressedBlockDevice
from repro.errors import KeyNotFoundError
from repro.lsm.engine import LSMConfig, LSMEngine
from tests.fuzz import fuzz_settings, report_seed, seed_strategy


def key(i: int) -> bytes:
    return i.to_bytes(8, "big")


class EngineTrio:
    """The three engines plus the reference model, driven in lockstep."""

    def __init__(self):
        self.reference: dict[bytes, bytes] = {}
        self.bminus = BMinusTree(
            CompressedBlockDevice(num_blocks=150_000),
            BMinusConfig(cache_bytes=1 << 16, max_pages=2048, log_blocks=512,
                         log_flush_policy="commit"),
        )
        self.btree = BTreeEngine(
            CompressedBlockDevice(num_blocks=150_000),
            BTreeConfig(cache_bytes=1 << 16, max_pages=2048, log_blocks=512,
                        atomicity="shadow-table", log_flush_policy="commit"),
        )
        self.lsm = LSMEngine(
            CompressedBlockDevice(num_blocks=150_000),
            LSMConfig(memtable_bytes=16 << 10, level_base_bytes=64 << 10,
                      table_target_bytes=16 << 10, log_blocks=1024,
                      log_flush_policy="commit"),
        )
        self.engines = [self.bminus, self.btree, self.lsm]

    def put(self, k: bytes, v: bytes) -> None:
        self.reference[k] = v
        for engine in self.engines:
            engine.put(k, v)
            engine.commit()

    def delete(self, k: bytes) -> None:
        present = k in self.reference
        self.reference.pop(k, None)
        for engine in self.engines:
            if isinstance(engine, LSMEngine):
                if present:
                    engine.delete_checked(k)
                else:
                    with pytest.raises(KeyNotFoundError):
                        engine.delete_checked(k)
            else:
                if present:
                    engine.delete(k)
                else:
                    with pytest.raises(KeyNotFoundError):
                        engine.delete(k)
            engine.commit()

    def check_get(self, k: bytes) -> None:
        expected = self.reference.get(k)
        for engine in self.engines:
            assert engine.get(k) == expected, type(engine).__name__

    def check_scan(self, start: bytes, count: int) -> None:
        expected = sorted(
            (k, v) for k, v in self.reference.items() if k >= start
        )[:count]
        for engine in self.engines:
            assert engine.scan(start, count) == expected, type(engine).__name__

    def check_items(self) -> None:
        expected = dict(self.reference)
        for engine in self.engines:
            assert dict(engine.items()) == expected, type(engine).__name__


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_property_engines_agree(seed):
    rng = random.Random(seed)
    trio = EngineTrio()
    for step in range(rng.randrange(150, 500)):
        roll = rng.random()
        k = key(rng.randrange(300))
        if roll < 0.55:
            trio.put(k, rng.randbytes(rng.randrange(8, 100)))
        elif roll < 0.7:
            trio.delete(k)
        elif roll < 0.85:
            trio.check_get(k)
        else:
            trio.check_scan(k, rng.randrange(1, 25))
    trio.check_items()


def _driven_engine(make_engine, n_ops: int = 400):
    """Run a fixed deterministic workload; return (device, engine)."""
    device = CompressedBlockDevice(num_blocks=50_000)
    engine = make_engine(device)
    rng = random.Random(7)
    live = set()
    for _ in range(n_ops):
        k = key(rng.randrange(150))
        if rng.random() < 0.15 and k in live:
            engine.delete(k)
            live.discard(k)
        else:
            engine.put(k, rng.randbytes(rng.randrange(16, 90)))
            live.add(k)
        engine.commit()
    device.flush()
    return device, engine


_TRACE_ENGINES = {
    "bminus": lambda device: BMinusTree(
        device, BMinusConfig(cache_bytes=1 << 16, max_pages=2048,
                             log_blocks=512, log_flush_policy="commit")),
    "lsm": lambda device: LSMEngine(
        device, LSMConfig(memtable_bytes=8 << 10, level_base_bytes=32 << 10,
                          table_target_bytes=8 << 10, log_blocks=1024,
                          log_flush_policy="commit")),
}


@pytest.mark.parametrize("name", sorted(_TRACE_ENGINES))
def test_tracing_leaves_run_bit_identical(name):
    """The observability overhead guarantee: with the tracer installed
    (what ``REPRO_TRACE=1`` does at import time), the on-device bytes and
    every WA/IOPS counter must be bit-identical to an untraced run."""
    from repro.obs.trace import install_tracer, uninstall_tracer

    make_engine = _TRACE_ENGINES[name]
    base_device, base_engine = _driven_engine(make_engine)
    # A deliberately tiny ring so the buffer wraps mid-run: dropping events
    # must be as side-effect-free as recording them.
    install_tracer(capacity=128)
    try:
        traced_device, traced_engine = _driven_engine(make_engine)
    finally:
        tracer = uninstall_tracer()
    assert tracer.emitted > tracer.capacity, "ring never wrapped"
    assert traced_device._stable == base_device._stable
    assert traced_device.stats == base_device.stats
    assert traced_device.physical_bytes_used == base_device.physical_bytes_used
    assert traced_engine.traffic_snapshot() == base_engine.traffic_snapshot()


# --------------------------------------------------------------------------
# Batch API vs single-op sequence: the PR-6 bit-identity guarantee.

_BATCH_ENGINES = {
    "bminus": lambda device: BMinusTree(
        device, BMinusConfig(cache_bytes=1 << 16, max_pages=2048,
                             log_blocks=512, log_flush_policy="commit")),
    "lsm": lambda device: LSMEngine(
        device, LSMConfig(memtable_bytes=8 << 10, level_base_bytes=32 << 10,
                          table_target_bytes=8 << 10, log_blocks=1024,
                          log_flush_policy="commit")),
}


def _assert_runs_identical(single, batched, label: str) -> None:
    """Device bytes, device stats, WA counters, and FaultStats must match."""
    s_device, s_engine = single
    b_device, b_engine = batched
    assert b_device._stable == s_device._stable, f"{label}: device bytes differ"
    assert b_device.stats == s_device.stats, f"{label}: device stats differ"
    assert b_device.physical_bytes_used == s_device.physical_bytes_used, label
    assert b_engine.traffic_snapshot() == s_engine.traffic_snapshot(), (
        f"{label}: WA counters differ"
    )
    s_faults = getattr(s_engine, "fault_stats", None)
    if s_faults is not None:
        assert b_engine.fault_stats == s_faults, f"{label}: fault stats differ"


def _batch_items(rng: random.Random, n_ops: int, n_keys: int = 150):
    return [
        (key(rng.randrange(n_keys)), rng.randbytes(rng.randrange(16, 120)))
        for _ in range(n_ops)
    ]


def _run_chunked(make_engine, chunks, batched: bool):
    """Apply put chunks with one commit per chunk, per-op or through
    ``put_batch`` — the group-commit cadence is identical either way."""
    device = CompressedBlockDevice(num_blocks=150_000)
    engine = make_engine(device)
    for chunk in chunks:
        if batched:
            engine.put_batch(chunk)
        else:
            for k, v in chunk:
                engine.put(k, v)
        engine.commit()
    device.flush()
    return device, engine


@pytest.mark.parametrize("name", sorted(_BATCH_ENGINES))
def test_put_batch_bit_identical_to_single_puts(name):
    """Mixed batch sizes, including batches large enough to span leaf
    splits (B⁻-tree) and memtable flushes (LSM) mid-batch."""
    make_engine = _BATCH_ENGINES[name]
    rng = random.Random(2022)
    items = _batch_items(rng, 1500)
    chunks, i = [], 0
    while i < len(items):
        n = rng.choice((1, 2, 7, 64, 200))
        chunks.append(items[i : i + n])
        i += n
    single = _run_chunked(make_engine, chunks, batched=False)
    batched = _run_chunked(make_engine, chunks, batched=True)
    _assert_runs_identical(single, batched, name)


def test_put_batch_spans_leaf_splits():
    """One large sequential batch forces several leaf splits inside a single
    ``put_batch`` call (~70 records fill an 8KB leaf)."""
    make_engine = _BATCH_ENGINES["bminus"]
    items = [(key(i), bytes([i & 0xFF]) * 100) for i in range(600)]
    single = _run_chunked(make_engine, [items], batched=False)
    batched = _run_chunked(make_engine, [items], batched=True)
    assert batched[1].pager._next_page_id > 8, (
        "workload too small to split leaves mid-batch"
    )
    _assert_runs_identical(single, batched, "bminus/splits")


def test_put_batch_spans_memtable_flushes():
    """One batch whose payload exceeds the 8KB memtable several times over
    must take the exact per-op fallback and stay bit-identical."""
    make_engine = _BATCH_ENGINES["lsm"]
    rng = random.Random(5)
    items = [(key(i % 100), rng.randbytes(100)) for i in range(400)]
    single = _run_chunked(make_engine, [items], batched=False)
    batched = _run_chunked(make_engine, [items], batched=True)
    assert batched[1].memtable_flushes > 2, (
        "workload too small to flush the memtable mid-batch"
    )
    _assert_runs_identical(single, batched, "lsm/memtable-flush")


@pytest.mark.parametrize("name", sorted(_BATCH_ENGINES))
def test_get_and_delete_batch_bit_identical(name):
    make_engine = _BATCH_ENGINES[name]
    rng = random.Random(77)
    items = _batch_items(rng, 600)
    present = sorted({k for k, _ in items})
    to_delete = present[: len(present) // 2]
    reads = [key(rng.randrange(200)) for _ in range(300)]

    def run(batched: bool):
        device = CompressedBlockDevice(num_blocks=150_000)
        engine = make_engine(device)
        if batched:
            engine.put_batch(items)
            got = engine.get_batch(reads)
            engine.delete_batch(to_delete)
        else:
            for k, v in items:
                engine.put(k, v)
            got = [engine.get(k) for k in reads]
            for k in to_delete:
                engine.delete(k)
        engine.commit()
        device.flush()
        return device, engine, got

    s_device, s_engine, s_got = run(batched=False)
    b_device, b_engine, b_got = run(batched=True)
    assert b_got == s_got, f"{name}: get_batch results differ"
    _assert_runs_identical((s_device, s_engine), (b_device, b_engine), name)


@fuzz_settings(max_examples=6, deadline=None)
@given(seed=seed_strategy())
def test_fuzz_batch_partitions_bit_identical(seed):
    """Any random partition of any random op stream into batches leaves the
    device bit-identical to the single-op run, for both engines."""
    rng = random.Random(seed)
    items = _batch_items(rng, rng.randrange(200, 800), n_keys=rng.randrange(50, 300))
    chunks, i = [], 0
    while i < len(items):
        n = rng.randrange(1, 150)
        chunks.append(items[i : i + n])
        i += n
    with report_seed(seed):
        for name, make_engine in sorted(_BATCH_ENGINES.items()):
            single = _run_chunked(make_engine, chunks, batched=False)
            batched = _run_chunked(make_engine, chunks, batched=True)
            _assert_runs_identical(single, batched, f"{name}/seed={seed}")


def test_engines_agree_after_crash_and_recovery():
    rng = random.Random(99)
    trio = EngineTrio()
    for _ in range(800):
        k = key(rng.randrange(200))
        if rng.random() < 0.2 and trio.reference:
            trio.delete(rng.choice(sorted(trio.reference)))
        else:
            trio.put(k, rng.randbytes(64))
    # Crash all three, recover all three, and compare again.
    devices = [trio.bminus.engine.device, trio.btree.device, trio.lsm.device]
    for device in devices:
        device.simulate_crash(survives=lambda lba: rng.random() < 0.5)
    trio.bminus = BMinusTree.open(trio.bminus.engine.device, trio.bminus.config)
    trio.btree = BTreeEngine.open(trio.btree.device, trio.btree.config)
    trio.lsm = LSMEngine.open(trio.lsm.device, trio.lsm.config)
    trio.engines = [trio.bminus, trio.btree, trio.lsm]
    trio.check_items()
    trio.check_scan(key(50), 40)


# --------------------------------------------------------------------------
# PR-10 bit-identity: explicitly selecting the default compaction strategy
# with separation disabled must be indistinguishable from the default
# config — same device bytes, stats, WA counters, FaultStats — proving the
# strategy/vlog plumbing is invisible until opted into.


def _drive_lsm(config: LSMConfig):
    rng = random.Random(1234)
    device = CompressedBlockDevice(num_blocks=150_000)
    engine = LSMEngine(device, config)
    for step in range(600):
        k = key(rng.randrange(150))
        if rng.random() < 0.15:
            engine.delete(k)
        else:
            engine.put(k, rng.randbytes(rng.randrange(16, 200)))
        if step % 16 == 15:
            engine.commit()
    engine.commit()
    return device, engine


def test_explicit_leveled_no_separation_is_bit_identical():
    base = dict(memtable_bytes=8 << 10, level_base_bytes=32 << 10,
                table_target_bytes=8 << 10, log_blocks=1024,
                log_flush_policy="commit")
    default = _drive_lsm(LSMConfig(**base))
    explicit = _drive_lsm(LSMConfig(compaction_strategy="leveled",
                                    value_separation_threshold=None, **base))
    _assert_runs_identical(default, explicit, "leveled/separation-off")
    # Reopen both (same manifest bytes implies same recovered state, but
    # assert it anyway) and confirm the explicit config reads back clean.
    for device, _ in (default, explicit):
        reopened = LSMEngine.open(device, LSMConfig(**base))
        assert dict(reopened.items()) == dict(default[1].items())
        reopened.close()
