"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_device_errors_grouped():
    for cls in (errors.OutOfRangeError, errors.AlignmentError,
                errors.CapacityError, errors.TornWriteError):
        assert issubclass(cls, errors.DeviceError)


def test_key_not_found_is_a_key_error():
    """Callers can catch it either as a library error or a builtin KeyError."""
    assert issubclass(errors.KeyNotFoundError, KeyError)
    assert issubclass(errors.KeyNotFoundError, errors.TreeError)


def test_page_errors_grouped():
    assert issubclass(errors.PageFullError, errors.PageError)
    assert issubclass(errors.PageFormatError, errors.PageError)


def test_lsm_errors_grouped():
    assert issubclass(errors.CompactionError, errors.LsmError)


def test_single_except_clause_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.ChecksumError("boom")
    with pytest.raises(errors.ReproError):
        raise errors.WalError("boom")
    with pytest.raises(errors.ReproError):
        raise errors.ConfigError("boom")


def test_service_errors_grouped():
    for cls in (errors.ServiceOverloadError, errors.DeadlineExceededError,
                errors.RetryExhaustedError):
        assert issubclass(cls, errors.ServiceError)
    assert issubclass(errors.ServiceError, errors.ReproError)
