"""Smoke tests for the ``repro faultcheck`` campaign and its CLI plumbing.

The full four-system campaign runs in CI's extended-fuzz job; here a scaled-
down configuration proves the scheduler, the phase wiring, the report shape,
and the exit-code contract.
"""

import json

import pytest

from repro.bench.faultcheck import (
    FAULTCHECK_SYSTEMS,
    format_report,
    make_workload,
    run_crash_schedule,
    run_faultcheck,
    _make_suts,
)
from repro.cli import main


def test_workload_is_deterministic():
    assert make_workload(7, 50) == make_workload(7, 50)
    assert make_workload(7, 50) != make_workload(8, 50)
    kinds = {op[0] for op in make_workload(7, 200)}
    assert kinds == {"put", "del"}


def test_crash_schedule_covers_both_modes():
    sut = _make_suts()["btree-det-shadow"]
    stream = make_workload(5, 60)
    crash = run_crash_schedule(sut, stream, seed=5, budget=6)
    report = crash.as_dict()
    assert not report["failures"]
    # budget points x (drop, torn) modes, every one fired and recovered.
    assert report["tested"] == report["crashes_fired"] == 12
    assert report["mutation_points"] > report["tested"]


@pytest.mark.parametrize("system", ["bminus", "btree-journal"])
def test_scaled_down_campaign_passes(system):
    report = run_faultcheck([system], ops=200, budget=4, trials=1, seed=2022)
    assert report["passed"], format_report(report)
    entry = report["systems"][system]
    assert entry["crash_points"]["failures"] == []
    assert entry["fault_trials"]["failures"] == []
    # The targeted-corruption phase must actually heal something.
    counter = ("read_repairs" if entry["repair"]["style"] == "shadow"
               else "journal_repairs")
    assert entry["repair"][counter] > 0
    text = format_report(report)
    assert "PASSED" in text and system in text


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        run_faultcheck(["btree-rocksdb"], ops=20, budget=1, trials=0)
    assert "bminus" in FAULTCHECK_SYSTEMS


def test_cli_faultcheck_json(capsys):
    rc = main(["faultcheck", "--systems", "btree-journal", "--ops", "200",
               "--budget", "2", "--trials", "1", "--json"])
    out = capsys.readouterr().out
    report = json.loads(out)
    assert rc == 0
    assert report["passed"] is True
    assert set(report["systems"]) == {"btree-journal"}


def test_cli_faultcheck_summary(capsys):
    rc = main(["faultcheck", "--systems", "btree-shadow-table", "--ops", "80",
               "--budget", "2", "--trials", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "PASSED" in out


@pytest.mark.parametrize("system", ["bminus-group", "lsm-group"])
def test_group_commit_suts_crash_every_window_boundary(system):
    """The group-commit SUTs crash-test multi-op windows: recovery must show
    either the committed prefix alone or the full in-flight window — never a
    partial window."""
    report = run_faultcheck([system], ops=120, budget=4, trials=1, seed=2022)
    assert report["passed"], format_report(report)
    entry = report["systems"][system]
    assert entry["crash_points"]["failures"] == []
    assert entry["crash_points"]["crashes_fired"] == 8  # 4 points x 2 modes
    # Group SUTs serve multi-op windows, so boundaries < mutations.
    assert entry["crash_points"]["mutation_points"] > 0


def test_group_sut_acceptance_includes_the_full_inflight_window():
    sut = _make_suts()["bminus-group"]
    assert sut.group_size > 1
    stream = make_workload(9, 80)
    crash = run_crash_schedule(sut, stream, seed=9, budget=5)
    assert not crash.as_dict()["failures"]


def test_shard_split_sut_recovers_pre_or_post_split_at_every_boundary():
    """The sharded SUT crashes an online shard split at device boundaries on
    every device (shards, destination, meta journal) in drop and torn modes;
    recovery must serve exactly the populated keys with a 2- or 3-shard
    table — no lost keys, no duplicates, no hybrid routing."""
    from repro.bench.faultcheck import run_shard_split_schedule

    crash = run_shard_split_schedule(seed=2022, budget=4, ops=60)
    report = crash.as_dict()
    assert not report["failures"], report["failures"]
    assert report["tested"] == report["crashes_fired"] == 8  # 4 points x 2 modes
    assert report["mutation_points"] > 0


def test_shard_split_sut_covers_both_engines():
    from repro.bench.faultcheck import run_shard_split_schedule

    crash = run_shard_split_schedule(
        seed=2022, budget=2, ops=50, engine="lsm", partitioning="range"
    )
    assert not crash.as_dict()["failures"]
    assert crash.crashes_fired == 4


def test_shard_split_registered_in_campaign_and_cli_defaults():
    assert "shard-split" in FAULTCHECK_SYSTEMS
    report = run_faultcheck(["shard-split"], ops=60, budget=2, trials=1,
                            seed=2022)
    assert report["passed"], format_report(report)
    entry = report["systems"]["shard-split"]
    assert entry["crash_points"]["failures"] == []
    assert entry["fault_trials"]["trials"] == 0  # multi-device: no trial phase
    text = format_report(report)
    assert "shard-split" in text and "PASSED" in text


def test_lsm_group_sut_skips_probabilistic_fault_trials():
    sut = _make_suts()["lsm-group"]
    assert sut.fault_trials is False
    report = run_faultcheck(["lsm-group"], ops=80, budget=2, trials=2,
                            seed=2022)
    assert report["passed"]
    assert report["systems"]["lsm-group"]["fault_trials"]["trials"] == 0


def test_lsm_vlog_sut_passes_scaled_campaign():
    """The value-log GC protocol recovers at every scheduled crash point."""
    report = run_faultcheck(["lsm-vlog"], ops=200, budget=3, trials=1,
                            seed=2022)
    assert report["passed"], format_report(report)
    entry = report["systems"]["lsm-vlog"]
    assert entry["crash_points"]["failures"] == []
    assert entry["crash_points"]["tested"] == 6  # 3 points x drop+torn


def test_lsm_vlog_registered_in_campaign_and_cli_defaults():
    assert "lsm-vlog" in FAULTCHECK_SYSTEMS
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["faultcheck"])
    assert "lsm-vlog" in args.systems.split(",")


def test_lsm_vlog_workload_forces_gc_passes():
    """The campaign geometry is tight enough that GC actually runs —
    otherwise the crash schedule would never cut inside the GC protocol."""
    from repro.csd.device import CompressedBlockDevice

    sut = _make_suts()["lsm-vlog"]
    device = CompressedBlockDevice(4096)
    engine = sut.create(device)
    for kind, k, v in make_workload(2022, 200):
        if kind == "put":
            engine.put(k, v)
        else:
            engine.delete(k)
        engine.commit()
    assert engine.vlog is not None
    assert engine.vlog.stats.gc_passes > 0
    assert engine.vlog.stats.appended_records > 0
