"""Top-level public-API integration tests.

Exercises the package the way the README tells a downstream user to use it:
everything importable from ``repro``, engines interchangeable behind the
same KV surface, documented on every public item.
"""

import inspect

import pytest

import repro
from repro import (
    BMinusConfig,
    BMinusTree,
    BTreeConfig,
    BTreeEngine,
    CompressedBlockDevice,
    LSMConfig,
    LSMEngine,
)


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def make_engines():
    device_a = CompressedBlockDevice(num_blocks=120_000)
    device_b = CompressedBlockDevice(num_blocks=120_000)
    device_c = CompressedBlockDevice(num_blocks=120_000)
    return [
        (BMinusTree(device_a, BMinusConfig(
            cache_bytes=1 << 17, max_pages=2048, log_blocks=512)), device_a),
        (BTreeEngine(device_b, BTreeConfig(
            cache_bytes=1 << 17, max_pages=2048, log_blocks=512)), device_b),
        (LSMEngine(device_c, LSMConfig(
            memtable_bytes=16 << 10, level_base_bytes=64 << 10,
            table_target_bytes=16 << 10, log_blocks=512)), device_c),
    ]


def test_engines_share_the_kv_surface():
    """put/get/delete/scan/items/commit/tick/traffic_snapshot on all three."""
    for engine, _ in make_engines():
        for i in range(500):
            engine.put(i.to_bytes(8, "big"), bytes([i % 256]) * 32)
            engine.commit()
        assert engine.get((7).to_bytes(8, "big")) == bytes([7]) * 32
        assert len(engine.scan((0).to_bytes(8, "big"), 10)) == 10
        assert sum(1 for _ in engine.items()) == 500
        engine.tick()
        snap = engine.traffic_snapshot()
        assert snap.user_bytes == 500 * 40
        assert snap.total_physical > 0


def test_engines_recover_via_open():
    for engine, device in make_engines():
        engine.put(b"survivor", b"value")
        engine.commit()
        if hasattr(engine, "close"):
            engine.close()
        device.simulate_crash()
        reopened = type(engine).open(device, engine.config)
        assert reopened.get(b"survivor") == b"value"


_PUBLIC_MODULES = [
    "repro.btree.buffer_pool", "repro.btree.engine", "repro.btree.node",
    "repro.btree.page", "repro.btree.pager", "repro.btree.tree",
    "repro.btree.wal", "repro.core.bminus", "repro.core.delta",
    "repro.csd.compression", "repro.csd.device", "repro.csd.filedevice",
    "repro.csd.ftl",
    "repro.csd.latency", "repro.csd.stats", "repro.lsm.bloom",
    "repro.lsm.compaction", "repro.lsm.engine", "repro.lsm.manifest",
    "repro.lsm.memtable", "repro.lsm.sstable", "repro.lsm.version",
    "repro.metrics.counters", "repro.sim.clock", "repro.sim.rng",
    "repro.workloads.generator", "repro.workloads.records",
    "repro.workloads.runner", "repro.bench.harness", "repro.bench.speed",
    "repro.bench.reporting", "repro.cli",
]


@pytest.mark.parametrize("module_name", _PUBLIC_MODULES)
def test_every_public_item_is_documented(module_name):
    """Module, classes, and public functions/methods all carry docstrings."""
    module = __import__(module_name, fromlist=["_"])
    assert module.__doc__, f"{module_name} lacks a module docstring"
    for name, obj in vars(module).items():
        if name.startswith("_") or getattr(obj, "__module__", None) != module_name:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
