"""Unit tests for workload op streams."""

import itertools

import pytest

from repro.sim.rng import DeterministicRng
from repro.workloads.generator import (
    OpKind,
    mixed_ops,
    point_read_ops,
    random_write_ops,
    range_scan_ops,
)
from repro.workloads.records import KeySpace, decode_key


@pytest.fixture
def keyspace():
    return KeySpace(500, 128)


def take(stream, n):
    return list(itertools.islice(stream, n))


def test_write_ops_shape(keyspace, rng):
    ops = take(random_write_ops(keyspace, rng), 50)
    assert all(op.kind == OpKind.PUT for op in ops)
    assert all(len(op.value) == 120 for op in ops)
    assert all(0 <= decode_key(op.key) < 500 for op in ops)


def test_write_ops_deterministic(keyspace):
    a = take(random_write_ops(keyspace, DeterministicRng(5)), 20)
    b = take(random_write_ops(keyspace, DeterministicRng(5)), 20)
    assert a == b


def test_read_ops_shape(keyspace, rng):
    ops = take(point_read_ops(keyspace, rng), 50)
    assert all(op.kind == OpKind.READ and op.value is None for op in ops)


def test_scan_ops_shape(keyspace, rng):
    ops = take(range_scan_ops(keyspace, rng, scan_length=100), 50)
    assert all(op.kind == OpKind.SCAN and op.scan_length == 100 for op in ops)
    # Scan starts leave room for the scan inside the key space.
    assert all(decode_key(op.key) <= 500 - 100 for op in ops)


def test_scan_length_validation(keyspace, rng):
    with pytest.raises(ValueError):
        next(range_scan_ops(keyspace, rng, scan_length=0))


def test_mixed_ops_fractions(keyspace, rng):
    ops = take(mixed_ops(keyspace, rng, write_fraction=0.5, scan_fraction=0.2), 2000)
    kinds = [op.kind for op in ops]
    writes = kinds.count(OpKind.PUT) / len(kinds)
    scans = kinds.count(OpKind.SCAN) / len(kinds)
    assert 0.44 < writes < 0.56
    assert 0.15 < scans < 0.25


def test_mixed_ops_validation(keyspace, rng):
    with pytest.raises(ValueError):
        next(mixed_ops(keyspace, rng, write_fraction=0.8, scan_fraction=0.4))
    with pytest.raises(ValueError):
        next(mixed_ops(keyspace, rng, write_fraction=-0.1))
