"""Unit tests for record/key generation."""

import pytest

from repro.sim.rng import DeterministicRng
from repro.workloads.records import KeySpace, decode_key, encode_key, record_value


def test_key_roundtrip():
    assert decode_key(encode_key(12345)) == 12345


def test_keys_order_preserving():
    keys = [encode_key(i) for i in range(1000)]
    assert keys == sorted(keys)


def test_key_size():
    assert len(encode_key(0)) == 8
    assert len(encode_key(2**40)) == 8


def test_record_value_size():
    rng = DeterministicRng(1)
    assert len(record_value(rng, 128)) == 120
    assert len(record_value(rng, 16)) == 8


def test_record_value_half_zero(rng):
    value = record_value(rng, 128)
    zeros = value.count(0)
    # The trailing half is all zeros; the random half has a few zero bytes.
    assert zeros >= 60
    assert value[-60:] == bytes(60)


def test_record_value_random_half_differs(rng):
    a = record_value(rng, 128)
    b = record_value(rng, 128)
    assert a[:60] != b[:60]


def test_record_too_small_rejected(rng):
    with pytest.raises(ValueError):
        record_value(rng, 8)


def test_keyspace_basics():
    ks = KeySpace(1000, 128)
    assert ks.dataset_bytes == 128_000
    assert ks.value_size == 120
    assert ks.key(0) == encode_key(0)
    with pytest.raises(IndexError):
        ks.key(1000)


def test_keyspace_validation():
    with pytest.raises(ValueError):
        KeySpace(0, 128)
    with pytest.raises(ValueError):
        KeySpace(10, 8)


def test_keyspace_from_dataset():
    ks = KeySpace.from_dataset(150 << 20, 128)
    assert ks.n_records == (150 << 20) // 128


def test_random_key_in_range(rng):
    ks = KeySpace(50, 128)
    for _ in range(100):
        assert 0 <= decode_key(ks.random_key(rng)) < 50
