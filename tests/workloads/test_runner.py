"""Integration tests for the workload runner over real engines."""

import pytest

from repro.core.bminus import BMinusConfig, BMinusTree
from repro.csd.device import CompressedBlockDevice
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.workloads.records import KeySpace
from repro.workloads.runner import WorkloadRunner


def make_bminus(n_threads=1, policy="interval"):
    device = CompressedBlockDevice(num_blocks=200_000)
    clock = SimClock()
    engine = BMinusTree(device, BMinusConfig(
        cache_bytes=1 << 17, max_pages=4096, log_blocks=1024,
        log_flush_policy=policy,
    ), clock=clock)
    return WorkloadRunner(engine, device, clock, n_threads=n_threads), engine, device


def test_thread_count_validation():
    runner, _, _ = make_bminus()
    with pytest.raises(ValueError):
        WorkloadRunner(runner.engine, runner.device, runner.clock, n_threads=0)


def test_populate_inserts_every_key(rng):
    runner, engine, _ = make_bminus()
    keyspace = KeySpace(2000, 64)
    stats = runner.populate(keyspace, rng)
    assert stats.ops == 2000
    assert stats.puts == 2000
    assert sum(1 for _ in engine.items()) == 2000
    assert stats.traffic.user_bytes == keyspace.dataset_bytes


def test_populate_is_deterministic():
    usages = []
    for _ in range(2):
        runner, engine, device = make_bminus()
        runner.populate(KeySpace(1500, 128), DeterministicRng(7))
        usages.append(device.stats.physical_bytes_written)
    assert usages[0] == usages[1]


def test_steady_phase_measures_only_itself(rng):
    runner, engine, _ = make_bminus()
    keyspace = KeySpace(2000, 64)
    runner.populate(keyspace, rng.split("p"))
    stats = runner.run_random_writes(keyspace, 500, rng.split("s"))
    assert stats.ops == 500
    assert stats.traffic.user_bytes == 500 * 64
    assert stats.traffic.total_physical > 0


def test_point_read_phase(rng):
    runner, engine, _ = make_bminus()
    keyspace = KeySpace(8000, 64)  # larger than the cache, so reads miss
    runner.populate(keyspace, rng.split("p"))
    stats = runner.run_point_reads(keyspace, 300, rng.split("r"))
    assert stats.reads == 300
    assert stats.traffic.user_bytes == 0  # reads write nothing
    assert stats.device.logical_bytes_read > 0


def test_scan_phase_counts_records(rng):
    runner, engine, _ = make_bminus()
    keyspace = KeySpace(1000, 64)
    runner.populate(keyspace, rng.split("p"))
    stats = runner.run_range_scans(keyspace, 20, rng.split("s"), scan_length=50)
    assert stats.scans == 20
    assert stats.records_scanned == 20 * 50


def test_clock_advances_per_round_not_per_op(rng):
    keyspace = KeySpace(1000, 64)
    elapsed = {}
    for threads in (1, 4):
        runner, _, _ = make_bminus(n_threads=threads)
        runner.populate(keyspace, rng.split("p", threads))
        stats = runner.run_random_writes(keyspace, 400, rng.split("s", threads))
        elapsed[threads] = stats.elapsed_seconds
    # 4 threads complete the same op count in ~1/4 the simulated time.
    assert elapsed[4] == pytest.approx(elapsed[1] / 4, rel=0.05)


def test_group_commit_batches_log_flushes(rng):
    keyspace = KeySpace(1000, 64)
    flushes = {}
    for threads in (1, 8):
        runner, engine, _ = make_bminus(n_threads=threads, policy="commit")
        runner.populate(keyspace, rng.split("p", threads))
        before = engine.engine.wal.stats.flushes
        runner.run_random_writes(keyspace, 800, rng.split("s", threads))
        flushes[threads] = engine.engine.wal.stats.flushes - before
    # 8 client threads share each commit flush.
    assert flushes[8] < flushes[1] / 4


def test_runner_works_with_lsm_engine(rng):
    device = CompressedBlockDevice(num_blocks=200_000)
    clock = SimClock()
    engine = LSMEngine(device, LSMConfig(
        memtable_bytes=16 << 10, level_base_bytes=64 << 10,
        table_target_bytes=16 << 10, log_blocks=1024,
    ), clock=clock)
    runner = WorkloadRunner(engine, device, clock, n_threads=2)
    keyspace = KeySpace(3000, 64)
    runner.populate(keyspace, rng.split("p"))
    stats = runner.run_random_writes(keyspace, 1000, rng.split("s"))
    assert stats.ops == 1000
    assert sum(1 for _ in engine.items()) == 3000


# ------------------------------------------------------- batched + metrics


def _measured_run(batch_size, hub=None, policy="commit"):
    device = CompressedBlockDevice(num_blocks=200_000)
    clock = SimClock()
    engine = BMinusTree(device, BMinusConfig(
        cache_bytes=1 << 17, max_pages=4096, log_blocks=1024,
        log_flush_policy=policy,
    ), clock=clock)
    runner = WorkloadRunner(engine, device, clock, n_threads=4,
                            hub=hub, batch_size=batch_size)
    keyspace = KeySpace(2000, 64)
    runner.populate(keyspace, DeterministicRng(11))
    stats = runner.run_random_writes(keyspace, 600, DeterministicRng(12))
    reads = runner.run_point_reads(keyspace, 200, DeterministicRng(13))
    return device, stats, reads


def test_batched_run_bit_identical_to_per_op_run():
    per_op, _, _ = _measured_run(batch_size=1)
    batched, _, _ = _measured_run(batch_size=8)
    assert batched._stable == per_op._stable
    assert batched.stats == per_op.stats


def test_batched_run_feeds_the_hub_per_op():
    from repro.obs.metrics import MetricsHub

    hub = MetricsHub(window_seconds=0.05)
    device, stats, reads = _measured_run(batch_size=8, hub=hub)
    obs = hub.summary()
    # Every batched op is charged an even share into the same histograms.
    assert obs["op_latency"]["put"]["n"] == 2000 + 600
    assert obs["op_latency"]["read"]["n"] == 200
    assert obs["wa_windows"], "no WA windows sampled from batched rounds"


def test_hub_leaves_batched_run_bit_identical():
    from repro.obs.metrics import MetricsHub

    bare, _, _ = _measured_run(batch_size=8)
    observed, _, _ = _measured_run(batch_size=8,
                                   hub=MetricsHub(window_seconds=0.05))
    assert observed._stable == bare._stable
    assert observed.stats == bare.stats
