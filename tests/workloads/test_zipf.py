"""Tests for the Zipfian workload extension."""

import itertools
from collections import Counter

import pytest

from repro.sim.rng import DeterministicRng
from repro.workloads.records import KeySpace, decode_key
from repro.workloads.zipf import (
    ZipfGenerator,
    scattered_zipfian_write_ops,
    zipfian_write_ops,
)


def test_parameter_validation():
    with pytest.raises(ValueError):
        ZipfGenerator(0)
    with pytest.raises(ValueError):
        ZipfGenerator(10, theta=1.0)
    with pytest.raises(ValueError):
        ZipfGenerator(10, theta=-0.1)


def test_samples_in_range():
    zipf = ZipfGenerator(1000, 0.99)
    rng = DeterministicRng(1)
    for _ in range(2000):
        assert 0 <= zipf.sample(rng) < 1001  # analytic method may touch n


def test_skew_concentrates_on_head():
    zipf = ZipfGenerator(10_000, 0.99)
    rng = DeterministicRng(2)
    draws = Counter(zipf.sample(rng) for _ in range(20_000))
    hot_mass = sum(v for k, v in draws.items() if k < 100) / 20_000
    # YCSB zipf(0.99) puts well over a third of the mass on the top 1%.
    assert hot_mass > 0.35
    assert draws[0] > draws.get(5000, 0)


def test_theta_zero_is_nearly_uniform():
    zipf = ZipfGenerator(1000, 0.0)
    rng = DeterministicRng(3)
    draws = Counter(zipf.sample(rng) for _ in range(30_000))
    hot_mass = sum(v for k, v in draws.items() if k < 10) / 30_000
    assert hot_mass < 0.05  # ~1% expected under uniform


def test_higher_theta_more_skew():
    rng_a, rng_b = DeterministicRng(4), DeterministicRng(4)
    mild = Counter(ZipfGenerator(5000, 0.5).sample(rng_a) for _ in range(10_000))
    harsh = Counter(ZipfGenerator(5000, 0.95).sample(rng_b) for _ in range(10_000))
    assert harsh[0] > 2 * mild[0]


def test_head_mass_monotone():
    zipf = ZipfGenerator(1000, 0.9)
    assert 0 < zipf.head_mass(1) < zipf.head_mass(10) < zipf.head_mass(1000) <= 1.0001


def test_zipfian_write_ops_shape():
    keyspace = KeySpace(500, 128)
    ops = list(itertools.islice(
        zipfian_write_ops(keyspace, DeterministicRng(5)), 200))
    assert all(0 <= decode_key(op.key) < 500 for op in ops)
    assert all(len(op.value) == 120 for op in ops)


def test_scattered_variant_spreads_hot_keys():
    keyspace = KeySpace(10_000, 128)
    clustered = Counter(
        decode_key(op.key) for op in itertools.islice(
            zipfian_write_ops(keyspace, DeterministicRng(6)), 5000))
    scattered = Counter(
        decode_key(op.key) for op in itertools.islice(
            scattered_zipfian_write_ops(keyspace, DeterministicRng(6)), 5000))
    # Same skew (top key equally hot)...
    assert abs(max(clustered.values()) - max(scattered.values())) < 0.25 * max(
        clustered.values())
    # ...but the clustered variant's hot keys sit in the low key range while
    # the scattered variant's do not.
    hot_clustered = sorted(clustered, key=clustered.get, reverse=True)[:10]
    hot_scattered = sorted(scattered, key=scattered.get, reverse=True)[:10]
    assert max(hot_clustered) < 100
    assert max(hot_scattered) > 1000


def test_deterministic_streams():
    keyspace = KeySpace(100, 64)
    a = list(itertools.islice(zipfian_write_ops(keyspace, DeterministicRng(7)), 50))
    b = list(itertools.islice(zipfian_write_ops(keyspace, DeterministicRng(7)), 50))
    assert a == b
